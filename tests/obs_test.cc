// Tests for the observability layer (src/obs): metrics correctness
// under contention, trace span capture and Chrome JSON shape,
// request-scoped trace-context propagation across the engine /
// threadpool / graph replay, the flight recorder, and log-level
// filtering. Runs under the TSan preset (ctest -L obs).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <sstream>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "core/logging.h"
#include "er/engine.h"
#include "er/model.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/graph.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tensor/threadpool.h"

namespace hiergat {
namespace obs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 5000;

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (int i = 0; i < kOpsPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kOpsPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(GaugeTest, ConcurrentAddsAllLand) {
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge]() {
      for (int i = 0; i < kOpsPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.Value(), double{kThreads} * kOpsPerThread);
  gauge.Set(-2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), -2.5);
}

TEST(HistogramTest, ConcurrentObservesStayConsistent) {
  Histogram histogram({1.0, 2.0, 5.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        histogram.Observe(0.5 + t);  // Spread across buckets.
      }
    });
  }
  for (auto& t : threads) t.join();
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kOpsPerThread);
  ASSERT_EQ(snap.counts.size(), snap.bounds.size() + 1);
  int64_t bucket_total = 0;
  for (int64_t c : snap.counts) bucket_total += c;
  // Snapshot invariant: the reported count is derived from the buckets.
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  Histogram histogram({1.0, 2.0, 5.0, 10.0});
  for (int i = 0; i < 100; ++i) histogram.Observe(1.5);  // (1, 2] bucket.
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  const double p50 = snap.Percentile(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  EXPECT_EQ(Histogram().TakeSnapshot().Percentile(0.5), 0.0);
}

TEST(MetricsRegistryTest, NamesResolveToStableObjects) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("hiergat.test.stable");
  Counter& b = registry.GetCounter("hiergat.test.stable");
  EXPECT_EQ(&a, &b);
  a.Increment(7);
  registry.ResetAll();
  // ResetAll zeroes data but keeps the object (hot-path references
  // cached in static locals must survive).
  EXPECT_EQ(&registry.GetCounter("hiergat.test.stable"), &a);
  EXPECT_EQ(a.Value(), 0);
}

TEST(MetricsRegistryTest, CounterValuesFiltersByPrefix) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("hiergat.test.prefix.alpha").Increment(3);
  registry.GetCounter("hiergat.test.prefix.beta").Increment(5);
  registry.GetCounter("hiergat.test.prefixz.gamma").Increment(7);
  const auto values = registry.CounterValues("hiergat.test.prefix.");
  ASSERT_EQ(values.size(), 2u);
  // Map iteration order: lexicographic by name.
  EXPECT_EQ(values[0].first, "hiergat.test.prefix.alpha");
  EXPECT_EQ(values[0].second, 3);
  EXPECT_EQ(values[1].first, "hiergat.test.prefix.beta");
  EXPECT_EQ(values[1].second, 5);
}

TEST(HistogramTest, ExponentialBoundsBuildGeometricLadder) {
  const std::vector<double> bounds = Histogram::ExponentialBounds(1e-6, 4.0, 12);
  ASSERT_EQ(bounds.size(), 12u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    EXPECT_NEAR(bounds[i] / bounds[i - 1], 4.0, 1e-9);
  }
  // A histogram built from the ladder keeps the snapshot invariant.
  Histogram histogram(Histogram::ExponentialBounds(1.0, 2.0, 4));
  histogram.Observe(3.0);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  ASSERT_EQ(snap.bounds.size(), 4u);
  EXPECT_EQ(snap.count, 1);
}

TEST(MetricsRegistryTest, SnapshotExportsStayWellFormedUnderWrites) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("hiergat.test.export_counter");
  Gauge& gauge = registry.GetGauge("hiergat.test.export_gauge");
  Histogram& histogram =
      registry.GetHistogram("hiergat.test.export_histogram");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&]() {
      // At least one write even if `stop` lands before this thread is
      // ever scheduled (single-core hosts).
      do {
        counter.Increment();
        gauge.Add(0.25);
        histogram.Observe(0.001);
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  for (int i = 0; i < 20; ++i) {
    const std::string prom = registry.PrometheusText();
    EXPECT_NE(prom.find("hiergat_test_export_counter"), std::string::npos);
    EXPECT_NE(prom.find("hiergat_test_export_histogram_bucket"),
              std::string::npos);
    const std::string json = registry.JsonDump();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"hiergat.test.export_gauge\""), std::string::npos);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GT(counter.Value(), 0);
}

#if !defined(HIERGAT_NO_TRACING)

TEST(TraceTest, NestedSpansRecordWithContainment) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Start();
  {
    HG_TRACE_SPAN("outer");
    {
      HG_TRACE_SPAN("inner");
    }
  }
  recorder.Stop();
  EXPECT_EQ(recorder.event_count(), 2u);

  const std::string json = recorder.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Inner closes before outer, so it serializes first; both carry the
  // same tid (this thread's track).
  EXPECT_LT(json.find("\"inner\""), json.find("\"outer\""));
  recorder.Clear();
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(TraceTest, MultiThreadSpansGetDistinctTracks) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t]() {
      SetTraceThreadName("obs-test-worker-" + std::to_string(t));
      for (int i = 0; i < 10; ++i) {
        HG_TRACE_SPAN("work");
      }
    });
  }
  for (auto& t : threads) t.join();
  recorder.Stop();
  EXPECT_GE(recorder.event_count(), 40u);
  const std::string json = recorder.ChromeTraceJson();
  for (int t = 0; t < 4; ++t) {
    EXPECT_NE(json.find("obs-test-worker-" + std::to_string(t)),
              std::string::npos);
  }
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  recorder.Clear();
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  ASSERT_FALSE(recorder.enabled());
  {
    HG_TRACE_SPAN("ignored");
  }
  EXPECT_EQ(recorder.event_count(), 0u);
}

#endif  // !HIERGAT_NO_TRACING

TEST(TraceContextTest, ScopedRootInstallsOnlyWhenAbsent) {
  ASSERT_FALSE(CurrentTraceContext().active());
  uint64_t outer_id = 0;
  {
    ScopedTraceRoot root;
    outer_id = root.context().trace_id;
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(CurrentTraceContext().trace_id, outer_id);
    {
      // A nested entry point (ScoreBatch called from an engine worker)
      // must inherit the live request, not start a new one.
      ScopedTraceRoot nested;
      EXPECT_EQ(nested.context().trace_id, outer_id);
      EXPECT_EQ(CurrentTraceContext().trace_id, outer_id);
    }
    EXPECT_EQ(CurrentTraceContext().trace_id, outer_id);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
}

TEST(TraceContextTest, ScopedContextInstallsAndRestores) {
  const TraceContext first = NewTraceContext();
  const TraceContext second = NewTraceContext();
  EXPECT_NE(first.trace_id, second.trace_id);
  {
    ScopedTraceContext outer(first);
    EXPECT_EQ(CurrentTraceContext().trace_id, first.trace_id);
    {
      ScopedTraceContext inner(second);
      EXPECT_EQ(CurrentTraceContext().trace_id, second.trace_id);
    }
    EXPECT_EQ(CurrentTraceContext().trace_id, first.trace_id);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
}

#if !defined(HIERGAT_NO_TRACING)

TEST(TraceContextTest, ThreadPoolChunksInheritDispatcherContext) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();

  const TraceContext context = NewTraceContext();
  std::mutex seen_mutex;
  std::set<uint64_t> seen_ids;

  ThreadPool pool(3);
  recorder.Start();
  {
    ScopedTraceContext request(context);
    pool.ParallelFor(0, 64, 4, [&](int64_t begin, int64_t end) {
      (void)begin;
      (void)end;
      HG_TRACE_SPAN("obs-test.chunk");
      std::lock_guard<std::mutex> lock(seen_mutex);
      seen_ids.insert(CurrentTraceContext().trace_id);
    });
  }
  recorder.Stop();

  // Every chunk — worker-run or caller-run — saw exactly the
  // dispatcher's context.
  ASSERT_EQ(seen_ids.size(), 1u);
  EXPECT_EQ(*seen_ids.begin(), context.trace_id);
  size_t chunk_spans = 0;
  for (const TraceEvent& event : recorder.SnapshotEvents()) {
    if (std::string(event.name) != "obs-test.chunk") continue;
    ++chunk_spans;
    EXPECT_EQ(event.trace_id, context.trace_id);
  }
  EXPECT_GE(chunk_spans, 1u);
  recorder.Clear();
}

// A scoring model that records which trace context its ScoreBatch calls
// observe — the engine must hand the caller's request context to every
// worker thread.
class ContextProbeModel : public PairwiseModel {
 public:
  std::string name() const override { return "context-probe"; }
  void Train(const PairDataset&, const TrainOptions&) override {}

  std::vector<float> ScoreBatch(
      std::span<const EntityPair> pairs) const override {
    HG_TRACE_SPAN("obs-test.score_batch");
    {
      std::lock_guard<std::mutex> lock(mutex_);
      seen_ids_.insert(CurrentTraceContext().trace_id);
    }
    return std::vector<float>(pairs.size(), 0.5f);
  }

  std::set<uint64_t> seen_ids() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return seen_ids_;
  }

 protected:
  float ScorePair(const EntityPair&) const override { return 0.5f; }

 private:
  mutable std::mutex mutex_;
  mutable std::set<uint64_t> seen_ids_;
};

TEST(TraceContextTest, EngineWorkersCarryCallerRequestContext) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();

  ContextProbeModel model;
  EngineOptions options;
  options.num_threads = 3;
  InferenceEngine engine(options);
  const std::vector<EntityPair> pairs(64);

  const TraceContext context = NewTraceContext();
  recorder.Start();
  {
    ScopedTraceContext request(context);
    const std::vector<float> scores = engine.Score(model, pairs);
    ASSERT_EQ(scores.size(), pairs.size());
  }
  recorder.Stop();

  // Every worker's ScoreBatch ran under the caller's request id — the
  // whole fan-out is one trace, not one per worker thread.
  const std::set<uint64_t> seen = model.seen_ids();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), context.trace_id);
  // And every span recorded during the job (engine job, per-range
  // spans, model spans) carries that id.
  size_t spans = 0;
  for (const TraceEvent& event : recorder.SnapshotEvents()) {
    ++spans;
    EXPECT_EQ(event.trace_id, context.trace_id)
        << "span " << event.name << " lost the request context";
  }
  EXPECT_GE(spans, 2u);
  recorder.Clear();
}

TEST(TraceContextTest, ScoreWithoutCallerContextRootsItself) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();

  ContextProbeModel model;
  EngineOptions options;
  options.num_threads = 2;
  InferenceEngine engine(options);
  const std::vector<EntityPair> pairs(16);

  ASSERT_FALSE(CurrentTraceContext().active());
  recorder.Start();
  (void)engine.Score(model, pairs);
  recorder.Stop();

  // RunJob's ScopedTraceRoot minted a request id; workers inherited it.
  const std::set<uint64_t> seen = model.seen_ids();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_NE(*seen.begin(), 0u);
  EXPECT_FALSE(CurrentTraceContext().active());
  recorder.Clear();
}

TEST(TraceContextTest, GraphReplayNodesCarryContextAndCosts) {
  NoGradGuard no_grad;
  const int m = 4, k = 8, n = 2;
  std::vector<float> weight_data(static_cast<size_t>(k * n), 0.25f);
  Tensor w = Tensor::FromVector({k, n}, weight_data);
  Tensor x = Tensor::Zeros({m, k});
  graph::GraphCapture capture;
  capture.MarkInput(x);
  Tensor y = MatMul(x, w);
  capture.MarkOutput(y);
  auto compiled_or = capture.Finish();
  ASSERT_TRUE(compiled_or.ok()) << compiled_or.status().ToString();
  auto compiled = std::move(compiled_or).value();

  // Plan-time static costs: one MatMul node, exact 2*m*n*k FLOPs,
  // nonzero f32 traffic.
  const auto& costs = compiled->node_costs();
  ASSERT_EQ(costs.size(), 1u);
  EXPECT_EQ(std::string(costs[0].name), "MatMul");
  EXPECT_EQ(costs[0].flops, int64_t{2} * m * n * k);
  EXPECT_GT(costs[0].bytes, 0);
  EXPECT_EQ(compiled->stats().est_flops, costs[0].flops);

  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  const TraceContext context = NewTraceContext();
  std::vector<float> input(static_cast<size_t>(m * k), 1.0f);
  std::vector<float> output(static_cast<size_t>(m * n));
  const float* inputs[] = {input.data()};
  float* outputs[] = {output.data()};
  recorder.Start();
  {
    ScopedTraceContext request(context);
    compiled->Run(inputs, outputs, nullptr);
  }
  recorder.Stop();

  // The replayed node's span is stamped with the request id and the
  // static cost estimate.
  bool found = false;
  for (const TraceEvent& event : recorder.SnapshotEvents()) {
    if (std::string(event.name) != "MatMul") continue;
    found = true;
    EXPECT_EQ(event.trace_id, context.trace_id);
    EXPECT_EQ(event.flops, costs[0].flops);
    EXPECT_EQ(event.bytes, costs[0].bytes);
  }
  EXPECT_TRUE(found);
  recorder.Clear();

  // Replay counters accumulated under hiergat.graph.node.MatMul.*.
  const auto node_counters =
      MetricsRegistry::Global().CounterValues("hiergat.graph.node.MatMul.");
  bool saw_replays = false;
  for (const auto& [metric_name, value] : node_counters) {
    if (metric_name == "hiergat.graph.node.MatMul.replays") {
      saw_replays = true;
      EXPECT_GE(value, 1);
    }
  }
  EXPECT_TRUE(saw_replays);
}

TEST(TraceTest, RingOverwritesAreCountedAndReported) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  ASSERT_EQ(recorder.dropped_count(), 0u);

  Counter& global_drops =
      MetricsRegistry::Global().GetCounter("hiergat.trace.dropped_events");
  const int64_t drops_before = global_drops.Value();

  constexpr uint64_t kOverflow = 100;
  const uint64_t total = TraceRecorder::kEventsPerThread + kOverflow;
  // Record on a dedicated thread so exactly one ring wraps.
  std::thread writer([&recorder, total]() {
    for (uint64_t i = 0; i < total; ++i) {
      recorder.Record("obs-test.flood", i, 1);
    }
  });
  writer.join();

  EXPECT_EQ(recorder.dropped_count(), kOverflow);
  EXPECT_EQ(global_drops.Value() - drops_before,
            static_cast<int64_t>(kOverflow));
  // The Chrome JSON footer carries the per-export drop total, so a
  // truncated trace is distinguishable from a quiet one.
  const std::string json = recorder.ChromeTraceJson();
  EXPECT_NE(json.find("\"hiergatTrace\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":100"), std::string::npos);
  recorder.Clear();
  EXPECT_EQ(recorder.dropped_count(), 0u);
}

#endif  // !HIERGAT_NO_TRACING

TEST(FlightRecorderTest, RecordsSnapshotInSequenceOrder) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Clear();

  const obs::TraceContext context = NewTraceContext();
  {
    ScopedTraceContext request(context);
    RecordFlightEvent(FlightEventKind::kJobEnqueue, "obs-test", 10, 2);
    RecordFlightEvent(FlightEventKind::kJobStart, "obs-test", 10);
    RecordFlightEvent(FlightEventKind::kJobDone, "obs-test", 10);
  }

  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kJobEnqueue);
  EXPECT_EQ(events[1].kind, FlightEventKind::kJobStart);
  EXPECT_EQ(events[2].kind, FlightEventKind::kJobDone);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[0].a, 10);
  EXPECT_EQ(events[0].b, 2);
  EXPECT_EQ(std::string(events[0].detail), "obs-test");
  // Flight events are stamped with the request context too, so a crash
  // dump names the request that was in flight.
  EXPECT_EQ(events[0].trace_id, context.trace_id);

  const std::string json = recorder.Json();
  EXPECT_NE(json.find("\"flightRecorder\""), std::string::npos);
  EXPECT_NE(json.find("\"job_enqueue\""), std::string::npos);
  EXPECT_NE(json.find("\"obs-test\""), std::string::npos);
  recorder.Clear();
}

TEST(FlightRecorderTest, RingWrapKeepsNewestEvents) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Clear();
  const uint64_t total = FlightRecorder::kCapacity + 5;
  for (uint64_t i = 0; i < total; ++i) {
    RecordFlightEvent(FlightEventKind::kLogError, "obs-test-wrap",
                      static_cast<int64_t>(i));
  }
  EXPECT_EQ(recorder.recorded_count(), total);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kCapacity);
  // Oldest 5 events were overwritten; the tail survives in order.
  EXPECT_EQ(events.front().seq, 6u);
  EXPECT_EQ(events.back().seq, total);
  EXPECT_EQ(events.back().a, static_cast<int64_t>(total - 1));
  recorder.Clear();
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearSequenceAccounting) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Clear();
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([t]() {
      for (int i = 0; i < kPerWriter; ++i) {
        RecordFlightEvent(FlightEventKind::kCacheEviction, "obs-test-mt", t,
                          i);
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(recorder.recorded_count(),
            uint64_t{kWriters} * kPerWriter);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kCapacity);
  // Snapshot yields strictly increasing, unique sequence numbers.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  recorder.Clear();
}

TEST(FlightRecorderDeathTest, CheckFailureDumpsRecentEvents) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        // The child process re-records its own tail; the fatal hook must
        // print it before aborting.
        RecordFlightEvent(FlightEventKind::kJobStart, "obs-test-death", 42);
        HG_CHECK(false) << "obs-test deliberate failure";
      },
      "flight recorder.*last events.*job_start.*obs-test-death");
}

TEST(FlightRecorderTest, DrainAndDumpWritesTraceRingsToDrainPath) {
  // The clean-shutdown half of DrainAndDump (SIGTERM path of
  // tools/hiergat_serve): trace rings flush to the configured drain
  // path as Chrome JSON. The fatal half stays covered by the death test
  // below — it must not touch the (non-async-signal-safe) trace writer.
  const std::string path =
      ::testing::TempDir() + "/obs_drain_and_dump_trace.json";
  SetTraceDrainPath(path);
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Start();
  { HG_TRACE_SPAN("drain-test-span"); }
  TraceRecorder::Global().Stop();

  DrainAndDump(/*fatal=*/false);
  SetTraceDrainPath("");

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "drain path not written: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("drain-test-span"), std::string::npos);
  TraceRecorder::Global().Clear();
}

TEST(TraceMacroTest, CompilesInUnbracedIf) {
  // HG_TRACE_SPAN must be usable as a statement everywhere, including
  // the no-op HIERGAT_NO_TRACING expansion.
  if (true) HG_TRACE_SPAN("branch");
  SUCCEED();
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_level_ = GetLogLevel();
    records_.clear();
    SetLogSink([this](LogLevel level, const char* file, int line,
                      const std::string& message) {
      (void)file;
      (void)line;
      records_.emplace_back(level, message);
    });
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(previous_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> records_;
  LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, ThresholdFiltersBySeverity) {
  SetLogLevel(LogLevel::kWarn);
  HG_LOG(INFO) << "dropped";
  HG_LOG(WARN) << "kept-warn";
  HG_LOG(ERROR) << "kept-error";
  ASSERT_EQ(records_.size(), 2u);
  EXPECT_EQ(records_[0].first, LogLevel::kWarn);
  EXPECT_EQ(records_[0].second, "kept-warn");
  EXPECT_EQ(records_[1].first, LogLevel::kError);
  EXPECT_EQ(records_[1].second, "kept-error");

  SetLogLevel(LogLevel::kOff);
  HG_LOG(ERROR) << "silenced";
  EXPECT_EQ(records_.size(), 2u);
}

TEST_F(LogTest, FilteredOperandsAreNotEvaluated) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "payload";
  };
  HG_LOG(INFO) << expensive();
  EXPECT_EQ(evaluations, 0);
  HG_LOG(ERROR) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, MacroNestsInUnbracedIfElse) {
  SetLogLevel(LogLevel::kInfo);
  bool else_taken = false;
  // The else must bind to the outer if, not anything inside HG_LOG.
  if (false)
    HG_LOG(INFO) << "unreached";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);
  EXPECT_TRUE(records_.empty());
}

}  // namespace
}  // namespace obs
}  // namespace hiergat
