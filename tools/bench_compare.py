#!/usr/bin/env python3
"""Gates a fresh hiergat bench JSON against a committed baseline.

Usage:
  bench_compare.py BASELINE FRESH [options]
  bench_compare.py --self-test

Both files must be valid hiergat-bench-v1 documents (see
tools/check_bench_json.py) describing the *same* benchmark. The gate
compares a chosen set of metrics with direction-aware tolerances and
exits 1 with a REGRESSION line per violated bound.

Options:
  --higher METRIC[:TOL]   fresh metric must be >= baseline * (1 - TOL)
  --lower METRIC[:TOL]    fresh metric must be <= baseline * (1 + TOL)
  --throughput[:TOL]      gate throughput_items_per_sec (higher-is-better)
  --tol TOL               default tolerance when a check omits :TOL (0.5)
  --self-test             run the built-in correctness check and exit

Tolerances are relative fractions: ``--higher cache.hit_rate:0.2`` fails
when the fresh hit rate drops more than 20% below the baseline. Absolute
throughput is NOT gated by default — wall-clock numbers are machine- and
load-relative, so CI gates should prefer ratio metrics (speedups, hit
rates, reuse fractions) that stay comparable across hosts. Stdlib-only
on purpose, like the other tools here.
"""

import argparse
import json
import math
import sys

SCHEMA = "hiergat-bench-v1"


class GateError(Exception):
    pass


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise GateError(f"{path}: unreadable or invalid JSON: {exc}")
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise GateError(f'{path}: not a "{SCHEMA}" document')
    if not isinstance(doc.get("benchmark"), str) or not doc["benchmark"]:
        raise GateError(f'{path}: missing "benchmark" name')
    if not isinstance(doc.get("metrics"), dict):
        raise GateError(f'{path}: missing "metrics" object')
    return doc


def metric_value(doc, path, name):
    if name == "throughput_items_per_sec":
        value = doc.get("throughput_items_per_sec")
    else:
        value = doc["metrics"].get(name)
    if (
        not isinstance(value, (int, float))
        or isinstance(value, bool)
        or not math.isfinite(value)
    ):
        raise GateError(f'{path}: metric "{name}" missing or not finite')
    return float(value)


def parse_check(spec, default_tol):
    """Splits "metric[:tol]" into (metric, tol)."""
    name, _, tol_text = spec.partition(":")
    if not name:
        raise GateError(f"bad check spec {spec!r}: empty metric name")
    if not tol_text:
        return name, default_tol
    try:
        tol = float(tol_text)
    except ValueError:
        raise GateError(f"bad check spec {spec!r}: tolerance must be a number")
    if tol < 0:
        raise GateError(f"bad check spec {spec!r}: tolerance must be >= 0")
    return name, tol


def run_gate(baseline_path, fresh_path, higher, lower, default_tol):
    """Returns a list of REGRESSION strings (empty = gate passes)."""
    baseline = load_doc(baseline_path)
    fresh = load_doc(fresh_path)
    if baseline["benchmark"] != fresh["benchmark"]:
        raise GateError(
            f'benchmark mismatch: baseline is "{baseline["benchmark"]}", '
            f'fresh is "{fresh["benchmark"]}"'
        )

    regressions = []
    for spec in higher:
        name, tol = parse_check(spec, default_tol)
        base = metric_value(baseline, baseline_path, name)
        new = metric_value(fresh, fresh_path, name)
        floor = base * (1.0 - tol)
        status = "ok" if new >= floor else "REGRESSION"
        print(
            f"{status}: {name} = {new:.6g} vs baseline {base:.6g} "
            f"(must stay >= {floor:.6g}, tol {tol:.0%})"
        )
        if new < floor:
            regressions.append(name)
    for spec in lower:
        name, tol = parse_check(spec, default_tol)
        base = metric_value(baseline, baseline_path, name)
        new = metric_value(fresh, fresh_path, name)
        ceiling = base * (1.0 + tol)
        status = "ok" if new <= ceiling else "REGRESSION"
        print(
            f"{status}: {name} = {new:.6g} vs baseline {base:.6g} "
            f"(must stay <= {ceiling:.6g}, tol {tol:.0%})"
        )
        if new > ceiling:
            regressions.append(name)
    if not higher and not lower:
        raise GateError("no checks requested; pass --higher/--lower/--throughput")
    return regressions


def self_test():
    """Proves the gate actually fails on regressions (run as a ctest)."""
    import os
    import tempfile

    def doc(benchmark, throughput, metrics):
        return {
            "schema": SCHEMA,
            "benchmark": benchmark,
            "params": {},
            "repetitions": 1,
            "latency_seconds": {"p50": 0.1, "p95": 0.2},
            "throughput_items_per_sec": throughput,
            "metrics": metrics,
        }

    cases_passed = 0
    with tempfile.TemporaryDirectory() as tmp:

        def write(name, payload):
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            return path

        base = write("base.json", doc("t", 100.0, {"speedup": 2.0, "lat": 1.0}))

        # 1. Identical fresh run passes.
        same = write("same.json", doc("t", 100.0, {"speedup": 2.0, "lat": 1.0}))
        assert run_gate(base, same, ["speedup:0.2"], ["lat:0.2"], 0.5) == []
        cases_passed += 1

        # 2. A drop beyond tolerance on a higher-is-better metric fails.
        slow = write("slow.json", doc("t", 100.0, {"speedup": 1.0, "lat": 1.0}))
        assert run_gate(base, slow, ["speedup:0.2"], [], 0.5) == ["speedup"]
        cases_passed += 1

        # 3. A drop within tolerance passes.
        close = write("close.json", doc("t", 100.0, {"speedup": 1.9, "lat": 1.0}))
        assert run_gate(base, close, ["speedup:0.2"], [], 0.5) == []
        cases_passed += 1

        # 4. A rise beyond tolerance on a lower-is-better metric fails.
        lag = write("lag.json", doc("t", 100.0, {"speedup": 2.0, "lat": 2.0}))
        assert run_gate(base, lag, [], ["lat:0.2"], 0.5) == ["lat"]
        cases_passed += 1

        # 5. Throughput gating uses the top-level field.
        half = write("half.json", doc("t", 40.0, {"speedup": 2.0, "lat": 1.0}))
        assert run_gate(
            base, half, ["throughput_items_per_sec:0.5"], [], 0.5
        ) == ["throughput_items_per_sec"]
        cases_passed += 1

        # 6. Benchmark-name mismatch is an error, not a silent pass.
        other = write("other.json", doc("u", 100.0, {"speedup": 2.0}))
        try:
            run_gate(base, other, ["speedup"], [], 0.5)
        except GateError:
            cases_passed += 1
        else:
            raise AssertionError("benchmark mismatch must raise")

        # 7. A missing metric is an error, not a silent pass.
        try:
            run_gate(base, same, ["no_such_metric"], [], 0.5)
        except GateError:
            cases_passed += 1
        else:
            raise AssertionError("missing metric must raise")

    print(f"self-test OK ({cases_passed} cases)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("fresh", nargs="?")
    parser.add_argument("--higher", action="append", default=[], metavar="M[:TOL]")
    parser.add_argument("--lower", action="append", default=[], metavar="M[:TOL]")
    parser.add_argument(
        "--throughput",
        nargs="?",
        const="",
        default=None,
        metavar="TOL",
        help="gate throughput_items_per_sec (higher-is-better)",
    )
    parser.add_argument("--tol", type=float, default=0.5)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return self_test()
    if not args.baseline or not args.fresh:
        parser.error("BASELINE and FRESH are required (or use --self-test)")

    higher = list(args.higher)
    if args.throughput is not None:
        spec = "throughput_items_per_sec"
        if args.throughput:
            spec += f":{args.throughput}"
        higher.append(spec)

    try:
        regressions = run_gate(
            args.baseline, args.fresh, higher, args.lower, args.tol
        )
    except GateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if regressions:
        print(
            f"FAIL: {len(regressions)} metric(s) regressed beyond tolerance: "
            + ", ".join(regressions),
            file=sys.stderr,
        )
        return 1
    print("PASS: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
