#include "er/model.h"

#include "tensor/tensor.h"

namespace hiergat {

std::vector<float> PairwiseModel::ScoreBatch(
    std::span<const EntityPair> pairs) const {
  NoGradGuard no_grad;  // Inference never needs the autograd graph.
  std::vector<float> probabilities;
  probabilities.reserve(pairs.size());
  for (const EntityPair& pair : pairs) {
    probabilities.push_back(ScorePair(pair));
  }
  return probabilities;
}

float PairwiseModel::PredictProbability(const EntityPair& pair) const {
  return ScoreBatch(std::span<const EntityPair>(&pair, 1)).front();
}

EvalResult PairwiseModel::Evaluate(std::span<const EntityPair> pairs) const {
  const std::vector<float> probabilities = ScoreBatch(pairs);
  std::vector<int> labels;
  labels.reserve(pairs.size());
  for (const EntityPair& pair : pairs) labels.push_back(pair.label);
  return ComputeMetrics(probabilities, labels);
}

EvalResult CollectiveModel::Evaluate(
    std::span<const CollectiveQuery> queries) const {
  std::vector<float> probabilities;
  std::vector<int> labels;
  for (const CollectiveQuery& query : queries) {
    const std::vector<float> probs = PredictQuery(query);
    probabilities.insert(probabilities.end(), probs.begin(), probs.end());
    labels.insert(labels.end(), query.labels.begin(), query.labels.end());
  }
  return ComputeMetrics(probabilities, labels);
}

PairDataset FlattenCollective(const CollectiveDataset& data) {
  PairDataset flat;
  flat.name = data.name;
  auto flatten = [](const std::vector<CollectiveQuery>& queries,
                    std::vector<EntityPair>* out) {
    for (const CollectiveQuery& q : queries) {
      for (size_t i = 0; i < q.candidates.size(); ++i) {
        EntityPair pair;
        pair.left = q.query;
        pair.right = q.candidates[i];
        pair.label = q.labels[i];
        out->push_back(std::move(pair));
      }
    }
  };
  flatten(data.train, &flat.train);
  flatten(data.valid, &flat.valid);
  flatten(data.test, &flat.test);
  return flat;
}

void PairwiseAsCollective::Train(const CollectiveDataset& data,
                                 const TrainOptions& options) {
  pairwise_->Train(FlattenCollective(data), options);
}

std::vector<float> PairwiseAsCollective::PredictQuery(
    const CollectiveQuery& query) const {
  std::vector<EntityPair> pairs;
  pairs.reserve(query.candidates.size());
  for (size_t i = 0; i < query.candidates.size(); ++i) {
    EntityPair pair;
    pair.left = query.query;
    pair.right = query.candidates[i];
    pair.label = query.labels[i];
    pairs.push_back(std::move(pair));
  }
  return pairwise_->ScoreBatch(pairs);
}

}  // namespace hiergat
