// Smoke tests for the collective matchers (GCN / GAT / HGAT / HierGAT+)
// and the pairwise-as-collective adapter.

#include <gtest/gtest.h>

#include "blocking/blocker.h"
#include "data/synthetic.h"
#include "er/baselines/gnn.h"
#include "er/baselines/magellan.h"
#include "er/hiergat_plus.h"
#include "er/model.h"

namespace hiergat {
namespace {

CollectiveDataset SmallCollective(uint64_t seed = 501) {
  SyntheticSpec spec;
  spec.name = "col-smoke";
  spec.num_attributes = 3;
  spec.hardness = 0.6f;
  spec.noise = 0.05f;
  spec.desc_len = 8;
  spec.seed = seed;
  TwoTableDataset raw = GenerateTwoTable(spec, 200, 600);
  CollectiveBuildOptions options;
  options.top_n = 6;
  return BuildCollective(raw, options);
}

TrainOptions FastOptions() {
  TrainOptions options;
  options.epochs = 8;
  options.lr = 2e-3f;
  options.seed = 7;
  return options;
}

TEST(FlattenCollectiveTest, PreservesLabelsAndCounts) {
  CollectiveDataset data = SmallCollective();
  PairDataset flat = FlattenCollective(data);
  EXPECT_EQ(flat.train.size(), data.train.size() * 6);
  int collective_pos = 0, flat_pos = 0;
  for (const CollectiveQuery& q : data.train) {
    for (int l : q.labels) collective_pos += l;
  }
  for (const EntityPair& pair : flat.train) flat_pos += pair.label;
  EXPECT_EQ(collective_pos, flat_pos);
}

TEST(PairwiseAsCollectiveTest, MagellanAdapterWorks) {
  CollectiveDataset data = SmallCollective();
  MagellanModel magellan;
  PairwiseAsCollective adapter(&magellan);
  adapter.Train(data, FastOptions());
  const EvalResult result = adapter.Evaluate(data.test);
  EXPECT_GT(result.f1, 0.3f) << result.ToString();
  const std::vector<float> probs = adapter.PredictQuery(data.test.front());
  EXPECT_EQ(probs.size(), data.test.front().candidates.size());
}

TEST(GcnTest, TrainsAndScoresAboveChance) {
  CollectiveDataset data = SmallCollective();
  GnnConfig config;
  GcnCollectiveModel model(config);
  model.Train(data, FastOptions());
  const EvalResult result = model.Evaluate(data.test);
  EXPECT_GT(result.f1, 0.1f) << result.ToString();
}

TEST(GatTest, TrainsAndScoresAboveChance) {
  CollectiveDataset data = SmallCollective();
  GatCollectiveModel model;
  model.Train(data, FastOptions());
  const EvalResult result = model.Evaluate(data.test);
  EXPECT_GT(result.f1, 0.1f) << result.ToString();
}

TEST(HgatTest, TrainsAndScoresAboveChance) {
  CollectiveDataset data = SmallCollective();
  HgatCollectiveModel model;
  model.Train(data, FastOptions());
  const EvalResult result = model.Evaluate(data.test);
  EXPECT_GT(result.f1, 0.4f) << result.ToString();
}

TEST(HierGatPlusTest, LearnsSmallCollectiveBenchmark) {
  CollectiveDataset data = SmallCollective();
  HierGatPlusConfig config;
  config.lm_size = LmSize::kSmall;
  config.lm_pretrain_steps = 1500;
  HierGatPlusModel model(config);
  TrainOptions options = FastOptions();
  options.epochs = 10;
  model.Train(data, options);
  const EvalResult result = model.Evaluate(data.test);
  EXPECT_GT(result.f1, 0.35f) << result.ToString();
}

TEST(HierGatPlusTest, PredictQueryShapeMatchesCandidates) {
  CollectiveDataset data = SmallCollective(502);
  HierGatPlusConfig config;
  config.lm_size = LmSize::kSmall;
  config.lm_pretrain_steps = 0;
  HierGatPlusModel model(config);
  TrainOptions options = FastOptions();
  options.epochs = 1;
  options.max_train_items = 5;
  model.Train(data, options);
  const std::vector<float> probs = model.PredictQuery(data.test.front());
  EXPECT_EQ(probs.size(), data.test.front().candidates.size());
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

// Same contract as the pairwise matchers: TrainOptions::seed fully
// determines a run, including the graph baselines' embedding tables.
TEST(GnnTest, TrainingIsDeterministicPerSeed) {
  CollectiveDataset data = SmallCollective(504);
  TrainOptions options = FastOptions();
  options.epochs = 1;
  options.max_train_items = 8;
  auto run = [&]() {
    HgatCollectiveModel model;
    model.Train(data, options);
    return model.PredictQuery(data.test.front());
  };
  EXPECT_EQ(run(), run());
}

TEST(HierGatPlusTest, AblationsTrain) {
  CollectiveDataset data = SmallCollective(503);
  TrainOptions options = FastOptions();
  options.epochs = 1;
  options.max_train_items = 8;
  // Non-Align and Non-Sum (Table 11), Non-Context terms (Table 9).
  for (int variant = 0; variant < 3; ++variant) {
    HierGatPlusConfig config;
    config.lm_size = LmSize::kSmall;
    config.lm_pretrain_steps = 0;
    if (variant == 0) config.use_alignment = false;
    if (variant == 1) config.use_entity_summarization = false;
    if (variant == 2) config.context.use_entity_context = false;
    HierGatPlusModel model(config);
    model.Train(data, options);
    EXPECT_GE(model.Evaluate(data.test).f1, 0.0f);
  }
}

}  // namespace
}  // namespace hiergat
