#include "er/golden.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "blocking/blocker.h"
#include "core/serialize.h"

namespace hiergat {
namespace golden {

SyntheticSpec PairSpec() {
  SyntheticSpec spec;
  spec.name = "golden-pair";
  spec.num_pairs = 140;
  spec.positive_ratio = 0.25f;
  spec.num_attributes = 3;
  spec.hardness = 0.6f;
  spec.noise = 0.06f;
  spec.desc_len = 6;
  spec.seed = 1234;
  return spec;
}

SyntheticSpec CollectiveSpec() {
  SyntheticSpec spec;
  spec.name = "golden-collective";
  spec.num_pairs = 120;  // Catalog size driver for GenerateTwoTable.
  spec.positive_ratio = 0.25f;
  spec.num_attributes = 2;
  spec.hardness = 0.6f;
  spec.noise = 0.06f;
  spec.desc_len = 5;
  spec.seed = 4321;
  return spec;
}

PairDataset MakePairDataset() { return GeneratePairDataset(PairSpec()); }

CollectiveDataset MakeCollectiveDataset() {
  const TwoTableDataset raw =
      GenerateTwoTable(CollectiveSpec(), /*table_a_size=*/48,
                       /*table_b_size=*/72);
  CollectiveBuildOptions options;
  options.top_n = 4;
  options.seed = 4321;
  return BuildCollective(raw, options);
}

HierGatConfig PairModelConfig() {
  HierGatConfig config;
  config.lm_size = LmSize::kSmall;
  config.classifier_hidden = 16;
  config.lm_pretrain_steps = 30;
  return config;
}

HierGatPlusConfig CollectiveModelConfig() {
  HierGatPlusConfig config;
  config.lm_size = LmSize::kSmall;
  config.classifier_hidden = 16;
  config.lm_pretrain_steps = 30;
  return config;
}

TrainOptions TrainingOptions() {
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 8;
  options.seed = 77;
  return options;
}

std::vector<EntityPair> ProbePairs(const PairDataset& data) {
  const size_t count = std::min<size_t>(data.test.size(), 24);
  return std::vector<EntityPair>(data.test.begin(),
                                 data.test.begin() + count);
}

std::vector<CollectiveQuery> ProbeQueries(const CollectiveDataset& data) {
  const size_t count = std::min<size_t>(data.test.size(), 6);
  return std::vector<CollectiveQuery>(data.test.begin(),
                                      data.test.begin() + count);
}

std::vector<float> ScoreQueries(const CollectiveModel& model,
                                const std::vector<CollectiveQuery>& queries) {
  std::vector<float> scores;
  for (const CollectiveQuery& query : queries) {
    const std::vector<float> predictions = model.PredictQuery(query);
    scores.insert(scores.end(), predictions.begin(), predictions.end());
  }
  return scores;
}

std::string FormatScores(const std::vector<float>& scores) {
  std::string out;
  char buffer[48];
  for (const float score : scores) {
    std::snprintf(buffer, sizeof(buffer), "%.9e\n",
                  static_cast<double>(score));
    out += buffer;
  }
  return out;
}

StatusOr<std::vector<float>> ParseScores(const std::string& text) {
  std::vector<float> scores;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    char* end = nullptr;
    const float value = std::strtof(line.c_str(), &end);
    if (end == line.c_str()) {
      return Status::InvalidArgument("bad score line: '" + line + "'");
    }
    scores.push_back(value);
  }
  if (scores.empty()) {
    return Status::InvalidArgument("score file holds no scores");
  }
  return StatusOr<std::vector<float>>(std::move(scores));
}

Status WriteScores(const std::string& path,
                   const std::vector<float>& scores) {
  return WriteFileAtomic(path, FormatScores(scores));
}

StatusOr<std::vector<float>> ReadScores(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open score file " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return ParseScores(contents.str());
}

std::unique_ptr<HierGatModel> TrainPairModel() {
  auto model = std::make_unique<HierGatModel>(PairModelConfig());
  model->Train(MakePairDataset(), TrainingOptions());
  return model;
}

std::unique_ptr<HierGatPlusModel> TrainCollectiveModel() {
  auto model = std::make_unique<HierGatPlusModel>(CollectiveModelConfig());
  model->Train(MakeCollectiveDataset(), TrainingOptions());
  return model;
}

}  // namespace golden
}  // namespace hiergat
