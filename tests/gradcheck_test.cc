// Property-based verification of every differentiable op against
// central finite differences (the library's correctness backbone).

#include "tensor/gradcheck.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace hiergat {
namespace {

Tensor RandomInput(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(shape, rng, 0.8f, /*requires_grad=*/true);
}

void ExpectGradOk(
    const std::function<Tensor(const std::vector<Tensor>&)>& forward,
    std::vector<Tensor> inputs, float tolerance = 2e-2f) {
  GradCheckResult result =
      CheckGradients(forward, inputs, 1e-2f, tolerance);
  EXPECT_TRUE(result.passed)
      << "max_rel_error=" << result.max_rel_error
      << " worst_input=" << result.worst_input
      << " worst_element=" << result.worst_element;
}

TEST(GradCheck, Add) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Add(in[0], in[1])); },
      {RandomInput({3, 4}, 1), RandomInput({3, 4}, 2)});
}

TEST(GradCheck, AddBiasBroadcast) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Add(in[0], in[1])); },
      {RandomInput({3, 4}, 3), RandomInput({4}, 4)});
}

TEST(GradCheck, SubAndNeg) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Sub(in[0], Neg(in[1])));
      },
      {RandomInput({3, 4}, 101), RandomInput({3, 4}, 102)});
}

TEST(GradCheck, SubBiasBroadcast) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor d = Sub(in[0], in[1]);
        return Sum(Mul(d, d));
      },
      {RandomInput({3, 4}, 103), RandomInput({4}, 104)});
}

TEST(GradCheck, AddScalar) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor shifted = AddScalar(in[0], 1.5f);
        return Sum(Mul(shifted, shifted));
      },
      {RandomInput({2, 5}, 105)});
}

TEST(GradCheck, MulAndScale) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Scale(Mul(in[0], in[1]), 1.7f));
      },
      {RandomInput({2, 3}, 5), RandomInput({2, 3}, 6)});
}

TEST(GradCheck, MatMul) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(MatMul(in[0], in[1]));
      },
      {RandomInput({3, 4}, 7), RandomInput({4, 2}, 8)});
}

TEST(GradCheck, MatMulChainWithTranspose) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(MatMul(in[0], Transpose(in[1])));
      },
      {RandomInput({2, 3}, 9), RandomInput({4, 3}, 10)});
}

TEST(GradCheck, ConcatRowsAndCols) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor rows = ConcatRows({in[0], in[1]});
        Tensor cols = ConcatCols({rows, in[2]});
        return Sum(Mul(cols, cols));
      },
      {RandomInput({2, 3}, 11), RandomInput({1, 3}, 12),
       RandomInput({3, 2}, 13)});
}

TEST(GradCheck, ReshapeAndFlatten) {
  // Reshape/Flatten alias the parent's storage; gradients must still
  // flow through the separate grad buffers.
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor r = Reshape(in[0], {2, 6});
        Tensor f = Flatten(Mul(r, r));
        return Sum(Mul(f, f));
      },
      {RandomInput({3, 4}, 106)});
}

TEST(GradCheck, RowSelection) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor r = Row(in[0], 1);
        return Sum(Mul(r, r));
      },
      {RandomInput({3, 4}, 107)});
}

TEST(GradCheck, SliceRowsAndCols) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor a = SliceRows(in[0], 1, 3);
        Tensor b = SliceCols(a, 0, 2);
        return Sum(Mul(b, b));
      },
      {RandomInput({4, 3}, 14)});
}

TEST(GradCheck, GatherRows) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor g = GatherRows(in[0], {0, 2, 2, 1});
        return Sum(Mul(g, g));
      },
      {RandomInput({3, 3}, 15)});
}

TEST(GradCheck, Softmax) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor s = Softmax(in[0]);
        // Non-uniform downstream weights exercise the full Jacobian.
        Tensor w = Tensor::FromVector({2, 3}, {1, -2, 3, 0.5, 2, -1});
        return Sum(Mul(s, w));
      },
      {RandomInput({2, 3}, 16)});
}

TEST(GradCheck, EmbeddingLookup) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor e = EmbeddingLookup(in[0], {1, 0, 1, 2});
        return Sum(Mul(e, e));
      },
      {RandomInput({3, 3}, 108)});
}

TEST(GradCheck, Relu) {
  // Inputs pushed away from the kink at 0, where the derivative is not
  // defined and finite differences straddle it.
  Rng rng(109);
  Tensor x = Tensor::Uniform({3, 3}, rng, 0.2f, 1.5f, true);
  Tensor y = Tensor::Uniform({3, 3}, rng, -1.5f, -0.2f, true);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Add(Relu(in[0]), Relu(in[1])));
      },
      {x, y});
}

TEST(GradCheck, Dropout) {
  // A fresh Rng with a fixed seed per forward call makes the mask
  // deterministic, so finite differences see the same function.
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Rng rng(7);
        Tensor d = Dropout(in[0], 0.4f, rng, /*training=*/true);
        return Sum(Mul(d, d));
      },
      {RandomInput({4, 4}, 110)});
}

TEST(GradCheck, Activations) {
  for (uint64_t seed : {17u, 18u}) {
    ExpectGradOk(
        [](const std::vector<Tensor>& in) {
          Tensor h = Tanh(in[0]);
          h = Add(h, Sigmoid(in[0]));
          h = Add(h, LeakyRelu(in[0], 0.2f));
          h = Add(h, Gelu(in[0]));
          return Sum(Mul(h, h));
        },
        {RandomInput({3, 3}, seed)});
  }
}

TEST(GradCheck, ExpLog) {
  // Keep inputs positive for Log.
  Rng rng(19);
  Tensor x = Tensor::Uniform({2, 3}, rng, 0.5f, 2.0f, true);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Add(Log(in[0]), Exp(Scale(in[0], 0.3f))));
      },
      {x});
}

TEST(GradCheck, Reductions) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor m = MeanRows(in[0]);
        Tensor s = SumRows(in[0]);
        return Add(Mean(in[0]), Sum(Mul(m, s)));
      },
      {RandomInput({3, 4}, 20)});
}

TEST(GradCheck, LayerNorm) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor y = LayerNorm(in[0], in[1], in[2]);
        Tensor w = Tensor::FromVector({2, 4},
                                      {1, -1, 2, 0.5, -2, 1, 0.3, 1});
        return Sum(Mul(y, w));
      },
      {RandomInput({2, 4}, 21), RandomInput({4}, 22), RandomInput({4}, 23)},
      /*tolerance=*/5e-2f);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return SoftmaxCrossEntropy(in[0], {1, 0, 1});
      },
      {RandomInput({3, 2}, 24)});
}

TEST(GradCheck, AttentionComposite) {
  // A miniature scaled-dot-product attention: the composite exercises
  // MatMul + Softmax + Transpose in the exact pattern the models use.
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor scores = Scale(MatMul(in[0], Transpose(in[1])), 0.5f);
        Tensor attn = Softmax(scores);
        Tensor out = MatMul(attn, in[2]);
        return Sum(Mul(out, out));
      },
      {RandomInput({3, 4}, 25), RandomInput({3, 4}, 26),
       RandomInput({3, 4}, 27)},
      /*tolerance=*/5e-2f);
}

TEST(GradCheck, LinearOpWithBias) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor y = LinearOp(in[0], in[1], in[2]);
        return Sum(Mul(y, y));
      },
      {RandomInput({3, 4}, 201), RandomInput({4, 2}, 202),
       RandomInput({2}, 203)});
}

TEST(GradCheck, LinearOpNoBias) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor y = LinearOp(in[0], in[1]);
        return Sum(Mul(y, y));
      },
      {RandomInput({2, 5}, 204), RandomInput({5, 3}, 205)});
}

TEST(GradCheck, AttentionScoresFused) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor attn = AttentionScores(in[0], in[1], 0.5f);
        Tensor w = Tensor::FromVector({3, 2}, {1, -2, 3, 0.5, 2, -1});
        return Sum(Mul(attn, w));
      },
      {RandomInput({3, 4}, 206), RandomInput({2, 4}, 207)},
      /*tolerance=*/5e-2f);
}

TEST(GradCheck, AttentionScoresWithMask) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor attn = AttentionScores(in[0], in[1], 0.7f, in[2]);
        Tensor out = MatMul(attn, in[3]);
        return Sum(Mul(out, out));
      },
      {RandomInput({3, 4}, 208), RandomInput({3, 4}, 209),
       RandomInput({3, 3}, 210), RandomInput({3, 2}, 211)},
      /*tolerance=*/5e-2f);
}

TEST(GradCheck, FusedMatchesUnfusedComposition) {
  // The fused nodes must compute the same function as the op chains
  // they replace — values and gradients.
  Tensor x = RandomInput({3, 4}, 212);
  Tensor w = RandomInput({4, 2}, 213);
  Tensor b = RandomInput({2}, 214);

  Tensor fused_loss = Sum(LinearOp(x, w, b));
  fused_loss.Backward();
  const std::vector<float> gx = x.grad(), gw = w.grad(), gb = b.grad();

  x.ZeroGrad();
  w.ZeroGrad();
  b.ZeroGrad();
  Tensor unfused_loss = Sum(Add(MatMul(x, w), b));
  unfused_loss.Backward();

  EXPECT_NEAR(fused_loss.item(), unfused_loss.item(), 1e-5f);
  for (size_t i = 0; i < gx.size(); ++i)
    EXPECT_NEAR(gx[i], x.grad()[i], 1e-4f);
  for (size_t i = 0; i < gw.size(); ++i)
    EXPECT_NEAR(gw[i], w.grad()[i], 1e-4f);
  for (size_t i = 0; i < gb.size(); ++i)
    EXPECT_NEAR(gb[i], b.grad()[i], 1e-4f);
}

// Parameterized sweep: Sum of elementwise composite over many shapes.
class GradCheckShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GradCheckShapes, CompositeElementwise) {
  const Shape shape = GetParam();
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor h = Mul(Tanh(in[0]), Sigmoid(in[0]));
        return Sum(Mul(h, h));
      },
      {RandomInput(shape, 31 + static_cast<uint64_t>(shape[0]))});
}

INSTANTIATE_TEST_SUITE_P(Shapes, GradCheckShapes,
                         ::testing::Values(Shape{1, 1}, Shape{1, 7},
                                           Shape{5, 1}, Shape{4, 4},
                                           Shape{2, 9}, Shape{8, 3}));

}  // namespace
}  // namespace hiergat
