#include "er/engine.h"

#include <algorithm>
#include <optional>
#include <string>

#include "nn/introspection.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/threadpool.h"

namespace hiergat {

namespace {

// Engine metrics (DESIGN.md §8). Resolved once; hot paths touch only
// the metric atomics.
obs::Counter& JobsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("hiergat.engine.jobs");
  return counter;
}
obs::Counter& ItemsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("hiergat.engine.items");
  return counter;
}
obs::Counter& StealsCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("hiergat.engine.steals");
  return counter;
}
obs::Histogram& BatchSecondsHistogram() {
  // Jobs run 100us (a handful of cached pairs) to tens of seconds (a
  // full evaluation sweep): doubling buckets over 1e-4s .. ~13s.
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "hiergat.engine.batch_seconds",
          obs::Histogram::ExponentialBounds(1e-4, 2.0, 18));
  return histogram;
}
obs::Histogram& QueueWaitSecondsHistogram() {
  // Queue waits are bimodal — ~1us uncontended lock acquisition or the
  // length of whole queued jobs — so a steep x4 ladder over 1us .. ~4s
  // resolves both ends with few buckets.
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "hiergat.engine.queue_wait_seconds",
          obs::Histogram::ExponentialBounds(1e-6, 4.0, 12));
  return histogram;
}
obs::Histogram& BatchItemsHistogram() {
  // Job sizes in items (pairs/queries), 1 .. 32768 doubling.
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "hiergat.engine.batch_items",
          obs::Histogram::ExponentialBounds(1.0, 2.0, 16));
  return histogram;
}
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("hiergat.engine.queue_depth");
  return gauge;
}
obs::Counter& QueueLimitWaitsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "hiergat.engine.queue_limit_waits");
  return counter;
}
obs::Counter& AdmissionRejectedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "hiergat.engine.admission.rejected");
  return counter;
}

constexpr uint64_t Pack(int begin, int end) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(begin)) << 32) |
         static_cast<uint32_t>(end);
}

constexpr int RangeBegin(uint64_t packed) {
  return static_cast<int>(packed >> 32);
}

constexpr int RangeEnd(uint64_t packed) {
  return static_cast<int>(packed & 0xffffffffu);
}

/// Owner side: claims up to `grain` items off the front of `slot`.
bool PopFront(std::atomic<uint64_t>& slot, int grain, int* out_begin,
              int* out_end) {
  uint64_t cur = slot.load(std::memory_order_acquire);
  for (;;) {
    const int begin = RangeBegin(cur);
    const int end = RangeEnd(cur);
    if (begin >= end) return false;
    const int take = std::min(grain, end - begin);
    if (slot.compare_exchange_weak(cur, Pack(begin + take, end),
                                   std::memory_order_acq_rel)) {
      *out_begin = begin;
      *out_end = begin + take;
      return true;
    }
  }
}

/// Thief side: claims the back half of the victim's remaining range.
bool StealBack(std::atomic<uint64_t>& slot, int* out_begin, int* out_end) {
  uint64_t cur = slot.load(std::memory_order_acquire);
  for (;;) {
    const int begin = RangeBegin(cur);
    const int end = RangeEnd(cur);
    const int remaining = end - begin;
    if (remaining <= 0) return false;
    const int take = (remaining + 1) / 2;
    if (slot.compare_exchange_weak(cur, Pack(begin, end - take),
                                   std::memory_order_acq_rel)) {
      *out_begin = end - take;
      *out_end = end;
      return true;
    }
  }
}

}  // namespace

InferenceEngine::InferenceEngine(const EngineOptions& options)
    : num_threads_(options.num_threads > 0
                       ? options.num_threads
                       : std::max(1u, std::thread::hardware_concurrency())),
      grain_(std::max(1, options.min_grain)),
      max_queue_depth_(std::max(0, options.max_queue_depth)),
      slots_(static_cast<size_t>(num_threads_)) {
  threads_.reserve(static_cast<size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

InferenceEngine::~InferenceEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::vector<EngineWorkerStats> InferenceEngine::worker_stats() const {
  std::vector<EngineWorkerStats> stats(static_cast<size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w) {
    const Slot& slot = slots_[static_cast<size_t>(w)];
    auto& out = stats[static_cast<size_t>(w)];
    out.items = slot.items.load(std::memory_order_relaxed);
    out.ranges = slot.ranges.load(std::memory_order_relaxed);
    out.steals = slot.steals.load(std::memory_order_relaxed);
  }
  return stats;
}

void InferenceEngine::WorkerLoop(int worker_id) {
  // Introspection caches (last_attention() and friends) are mutable
  // per-module state; recording from concurrent workers would race, and
  // batch scoring has no use for the values.
  SetAttentionRecording(false);
  obs::SetTraceThreadName("engine-worker-" + std::to_string(worker_id));
  // Shared thread budget with the tensor ThreadPool: when the engine
  // already fans items across >1 workers, intra-op parallelism inside a
  // worker would oversubscribe the machine, so kernels launched from
  // here run serial (see ScopedParallelismBan). A 1-worker engine keeps
  // intra-op parallelism — the pool's lanes are then the only users.
  std::optional<ScopedParallelismBan> intra_op_ban;
  if (num_threads_ > 1) intra_op_ban.emplace();
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] {
      return shutdown_ || job_generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = job_generation_;
    const std::function<void(int, int)> fn = job_fn_;
    // job_fn_ is non-null only while a job is in flight (set before the
    // generation bump, reset after completion, all under mutex_). A null
    // copy means this worker slept through the whole job; it must not
    // enter ProcessRanges, or it could claim ranges of a later job whose
    // accounting it never joined.
    if (!fn) continue;
    const obs::TraceContext job_context = job_context_;
    ++active_workers_;
    lock.unlock();
    int processed;
    {
      // Adopt the caller's request context: spans recorded while
      // scoring (engine.ScoreRange, model spans, graph nodes) link to
      // the request that dispatched this job.
      obs::ScopedTraceContext context_guard(job_context);
      processed = ProcessRanges(worker_id, fn);
    }
    lock.lock();
    --active_workers_;
    done_items_ += processed;
    if (done_items_ == job_total_ && active_workers_ == 0) {
      done_cv_.notify_all();
    }
  }
}

int InferenceEngine::ProcessRanges(int worker_id,
                                   const std::function<void(int, int)>& fn) {
  int processed = 0;
  Slot& self = slots_[static_cast<size_t>(worker_id)];
  std::atomic<uint64_t>& own = self.range;
  for (;;) {
    int begin, end;
    if (PopFront(own, grain_, &begin, &end)) {
      {
        HG_TRACE_SPAN("engine.ScoreRange");
        fn(begin, end);
      }
      processed += end - begin;
      self.items.fetch_add(end - begin, std::memory_order_relaxed);
      self.ranges.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    bool stole = false;
    for (int k = 1; k < num_threads_ && !stole; ++k) {
      const int victim = (worker_id + k) % num_threads_;
      if (StealBack(slots_[static_cast<size_t>(victim)].range, &begin,
                    &end)) {
        // Publish the stolen range as our own so other thieves can
        // split it further; an empty slot is never CAS-matched, so the
        // plain store cannot clobber a concurrent steal.
        own.store(Pack(begin, end), std::memory_order_release);
        self.steals.fetch_add(1, std::memory_order_relaxed);
        StealsCounter().Increment();
        stole = true;
      }
    }
    if (!stole) return processed;  // Every slot drained.
  }
}

bool InferenceEngine::RunJob(int total,
                             const std::function<void(int, int)>& process,
                             bool reject_if_full) {
  if (total <= 0) return true;
  // Each RunJob is one request: root a fresh trace context unless the
  // caller already carries one (e.g. a server wrapping several engine
  // calls in a single request context).
  obs::ScopedTraceRoot trace_root;
  HG_TRACE_SPAN("InferenceEngine::RunJob");
  // One job at a time: Score/Evaluate may be called from multiple
  // caller threads, but slots_/job_fn_/done_items_ describe a single
  // in-flight job, so callers queue here for the pool. queue_wait is
  // the time a caller spends behind other callers' jobs.
  const uint64_t enqueue_ns = obs::MonotonicNowNs();
  {
    std::unique_lock<std::mutex> queue_lock(queue_mutex_);
    if (max_queue_depth_ > 0 && queue_depth_ >= max_queue_depth_) {
      if (reject_if_full) {
        AdmissionRejectedCounter().Increment();
        obs::RecordFlightEvent(obs::FlightEventKind::kServeShed,
                               "engine.RunJob", total, queue_depth_);
        return false;
      }
      QueueLimitWaitsCounter().Increment();
      obs::RecordFlightEvent(obs::FlightEventKind::kQueueLimitWait,
                             "engine.RunJob", queue_depth_);
      queue_cv_.wait(queue_lock,
                     [&] { return queue_depth_ < max_queue_depth_; });
    }
    ++queue_depth_;
    QueueDepthGauge().Set(static_cast<double>(queue_depth_));
    obs::RecordFlightEvent(obs::FlightEventKind::kJobEnqueue,
                           "engine.RunJob", total, queue_depth_);
  }
  std::lock_guard<std::mutex> jobs_lock(jobs_mutex_);
  const uint64_t start_ns = obs::MonotonicNowNs();
  QueueWaitSecondsHistogram().Observe(
      static_cast<double>(start_ns - enqueue_ns) * 1e-9);
  JobsCounter().Increment();
  ItemsCounter().Increment(total);
  BatchItemsHistogram().Observe(static_cast<double>(total));
  obs::RecordFlightEvent(obs::FlightEventKind::kJobStart, "engine.RunJob",
                         total);
  std::unique_lock<std::mutex> lock(mutex_);
  // Even contiguous partition of [0, total); trailing workers may get
  // an empty slot when there are fewer items than threads.
  const int chunk = total / num_threads_;
  const int remainder = total % num_threads_;
  int begin = 0;
  for (int w = 0; w < num_threads_; ++w) {
    const int len = chunk + (w < remainder ? 1 : 0);
    slots_[static_cast<size_t>(w)].range.store(Pack(begin, begin + len),
                                               std::memory_order_release);
    begin += len;
  }
  job_fn_ = process;
  job_context_ = obs::CurrentTraceContext();
  job_total_ = total;
  done_items_ = 0;
  ++job_generation_;
  cv_.notify_all();
  // Wait until all items are scored AND every worker left ProcessRanges
  // (a worker still inside could otherwise race the next job's slots).
  done_cv_.wait(lock,
                [&] { return done_items_ == job_total_ && active_workers_ == 0; });
  job_fn_ = nullptr;
  job_context_ = obs::TraceContext{};
  BatchSecondsHistogram().Observe(
      static_cast<double>(obs::MonotonicNowNs() - start_ns) * 1e-9);
  obs::RecordFlightEvent(obs::FlightEventKind::kJobDone, "engine.RunJob",
                         total);
  {
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
    --queue_depth_;
    QueueDepthGauge().Set(static_cast<double>(queue_depth_));
  }
  queue_cv_.notify_one();
  return true;
}

std::vector<float> InferenceEngine::Score(const PairwiseModel& model,
                                          std::span<const EntityPair> pairs) {
  std::vector<float> probabilities(pairs.size());
  RunJob(static_cast<int>(pairs.size()), [&](int begin, int end) {
    const std::vector<float> part = model.ScoreBatch(
        pairs.subspan(static_cast<size_t>(begin),
                      static_cast<size_t>(end - begin)));
    std::copy(part.begin(), part.end(),
              probabilities.begin() + begin);
  });
  return probabilities;
}

StatusOr<std::vector<float>> InferenceEngine::TryScore(
    const PairwiseModel& model, std::span<const EntityPair> pairs) {
  std::vector<float> probabilities(pairs.size());
  const bool ran = RunJob(
      static_cast<int>(pairs.size()),
      [&](int begin, int end) {
        const std::vector<float> part = model.ScoreBatch(
            pairs.subspan(static_cast<size_t>(begin),
                          static_cast<size_t>(end - begin)));
        std::copy(part.begin(), part.end(), probabilities.begin() + begin);
      },
      /*reject_if_full=*/true);
  if (!ran) {
    return Status::ResourceExhausted(
        "engine: " + std::to_string(max_queue_depth_) +
        " job(s) already queued (max_queue_depth)");
  }
  return probabilities;
}

EvalResult InferenceEngine::Evaluate(const PairwiseModel& model,
                                     std::span<const EntityPair> pairs) {
  const std::vector<float> probabilities = Score(model, pairs);
  std::vector<int> labels;
  labels.reserve(pairs.size());
  for (const EntityPair& pair : pairs) labels.push_back(pair.label);
  return ComputeMetrics(probabilities, labels);
}

std::vector<std::vector<float>> InferenceEngine::ScoreQueries(
    const CollectiveModel& model, std::span<const CollectiveQuery> queries) {
  std::vector<std::vector<float>> results(queries.size());
  RunJob(static_cast<int>(queries.size()), [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      results[static_cast<size_t>(i)] =
          model.PredictQuery(queries[static_cast<size_t>(i)]);
    }
  });
  return results;
}

EvalResult InferenceEngine::Evaluate(const CollectiveModel& model,
                                     std::span<const CollectiveQuery> queries) {
  const std::vector<std::vector<float>> results = ScoreQueries(model, queries);
  std::vector<float> probabilities;
  std::vector<int> labels;
  for (size_t i = 0; i < queries.size(); ++i) {
    probabilities.insert(probabilities.end(), results[i].begin(),
                         results[i].end());
    labels.insert(labels.end(), queries[i].labels.begin(),
                  queries[i].labels.end());
  }
  return ComputeMetrics(probabilities, labels);
}

}  // namespace hiergat
