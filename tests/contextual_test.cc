// Unit tests for the HierGAT building blocks: graph-attention pooling,
// contextual (WpC) embedding, hierarchical aggregation and comparison,
// and the entity alignment layer.

#include <gtest/gtest.h>

#include "er/aggregation.h"
#include "er/comparison.h"
#include "er/contextual.h"
#include "er/graph_attention.h"
#include "graph/hhg.h"
#include "tensor/ops.h"

namespace hiergat {
namespace {

Entity MakeEntity(const std::string& title, const std::string& desc) {
  Entity e;
  e.Add("title", title);
  e.Add("desc", desc);
  return e;
}

TEST(GraphAttentionPoolTest, WeightsSumToOneAndShape) {
  Rng rng(1);
  GraphAttentionPool pool(4, rng);
  Tensor nodes = Tensor::Randn({5, 4}, rng);
  Tensor out = pool.Pool(nodes, nodes);
  EXPECT_EQ(out.dim(0), 1);
  EXPECT_EQ(out.dim(1), 4);
  const Tensor& w = pool.last_weights();
  float sum = 0.0f;
  for (int i = 0; i < w.dim(1); ++i) sum += w.at(0, i);
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(GraphAttentionPoolTest, PooledRowInsideConvexHull) {
  Rng rng(2);
  GraphAttentionPool pool(2, rng);
  Tensor nodes = Tensor::FromVector({3, 2}, {0, 0, 1, 0, 0, 1});
  Tensor out = pool.Pool(nodes, nodes);
  EXPECT_GE(out.at(0, 0), 0.0f);
  EXPECT_LE(out.at(0, 0), 1.0f);
  EXPECT_GE(out.at(0, 1), 0.0f);
  EXPECT_LE(out.at(0, 1), 1.0f);
}

TEST(GraphAttentionPoolTest, GradientsReachParameters) {
  Rng rng(3);
  GraphAttentionPool pool(3, rng);
  Tensor nodes = Tensor::Randn({4, 3}, rng, 1.0f, /*requires_grad=*/true);
  Tensor out = pool.Pool(nodes, nodes);
  Sum(out).Backward();
  for (const Tensor& p : pool.Parameters()) {
    EXPECT_FALSE(p.grad().empty());
  }
  EXPECT_FALSE(nodes.grad().empty());
}

TEST(TileRowsTest, BroadcastAndGradient) {
  Tensor row = Tensor::FromVector({1, 2}, {3, 4}, /*requires_grad=*/true);
  Tensor tiled = TileRows(row, 3);
  EXPECT_EQ(tiled.dim(0), 3);
  EXPECT_EQ(tiled.at(2, 1), 4.0f);
  Sum(tiled).Backward();
  EXPECT_FLOAT_EQ(row.grad()[0], 3.0f);
}

class ContextualFixture : public ::testing::Test {
 protected:
  ContextualFixture() {
    for (const char* word :
         {"adobe", "spark", "big", "data", "cluster", "framework", "design",
          "video", "cloud", "suite"}) {
      vocab_.Add(word);
    }
    lm_ = std::make_unique<MiniLm>(LmSize::kSmall, &vocab_, 5);
  }

  Vocabulary vocab_;
  std::unique_ptr<MiniLm> lm_;
  Rng rng_{7};
};

TEST_F(ContextualFixture, WpcShapeMatchesTokens) {
  ContextualConfig config;
  ContextualEmbedder embedder(lm_.get(), config, rng_);
  const Hhg hhg = Hhg::Build({MakeEntity("adobe spark", "design suite"),
                              MakeEntity("spark cluster", "big data")});
  Tensor wpc = embedder.Compute(hhg, /*training=*/false, rng_);
  EXPECT_EQ(wpc.dim(0), hhg.num_tokens());
  EXPECT_EQ(wpc.dim(1), lm_->dim());
}

TEST_F(ContextualFixture, NonContextReturnsBaseEmbeddings) {
  ContextualConfig config;
  config.use_token_context = false;
  config.use_attribute_context = false;
  config.use_entity_context = false;
  ContextualEmbedder embedder(lm_.get(), config, rng_);
  const Hhg hhg = Hhg::Build({MakeEntity("adobe spark", "design suite")});
  Tensor wpc = embedder.Compute(hhg, false, rng_);
  std::vector<int> ids;
  for (const std::string& t : hhg.tokens()) ids.push_back(vocab_.Id(t));
  Tensor base = lm_->Embed(ids);
  for (size_t i = 0; i < base.data().size(); ++i) {
    EXPECT_FLOAT_EQ(wpc.data()[i], base.data()[i]);
  }
}

TEST_F(ContextualFixture, ContextChangesEmbeddings) {
  ContextualConfig with;
  ContextualEmbedder embedder(lm_.get(), with, rng_);
  const Hhg hhg = Hhg::Build({MakeEntity("adobe spark", "design suite"),
                              MakeEntity("spark cluster", "big data")});
  Tensor wpc = embedder.Compute(hhg, false, rng_);
  std::vector<int> ids;
  for (const std::string& t : hhg.tokens()) ids.push_back(vocab_.Id(t));
  Tensor base = lm_->Embed(ids);
  float diff = 0.0f;
  for (size_t i = 0; i < base.data().size(); ++i) {
    diff += std::abs(wpc.data()[i] - base.data()[i]);
  }
  EXPECT_GT(diff, 1e-3f) << "WpC must differ from the raw embeddings";
}

TEST_F(ContextualFixture, SameWordDifferentContextGetsDifferentWpc) {
  // "spark" under adobe-design vs cluster-big-data must diverge: the
  // polysemy motivation of §1/§4. Two separate graphs give the word
  // different neighbors.
  ContextualConfig config;
  ContextualEmbedder embedder(lm_.get(), config, rng_);
  const Hhg design = Hhg::Build({MakeEntity("adobe spark", "design suite")});
  const Hhg data = Hhg::Build({MakeEntity("spark cluster", "big data")});
  auto wpc_of = [&](const Hhg& hhg, const std::string& word) {
    Tensor wpc = embedder.Compute(hhg, false, rng_);
    for (int t = 0; t < hhg.num_tokens(); ++t) {
      if (hhg.token(t) == word) {
        std::vector<float> row(wpc.data().begin() + t * lm_->dim(),
                               wpc.data().begin() + (t + 1) * lm_->dim());
        return row;
      }
    }
    return std::vector<float>();
  };
  const std::vector<float> a = wpc_of(design, "spark");
  const std::vector<float> b = wpc_of(data, "spark");
  ASSERT_EQ(a.size(), b.size());
  float diff = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-3f);
}

TEST_F(ContextualFixture, EntityContextTermAddsRedundantRemoval) {
  ContextualConfig without;
  without.use_entity_context = false;
  ContextualConfig with = without;
  with.use_entity_context = true;
  Rng r1(7), r2(7);
  ContextualEmbedder e1(lm_.get(), without, r1);
  ContextualEmbedder e2(lm_.get(), with, r2);
  const Hhg hhg = Hhg::Build({MakeEntity("spark cloud", "big data"),
                              MakeEntity("spark cloud", "video suite")});
  Tensor a = e1.Compute(hhg, false, rng_);
  Tensor b = e2.Compute(hhg, false, rng_);
  float diff = 0.0f;
  for (size_t i = 0; i < a.data().size(); ++i) {
    diff += std::abs(a.data()[i] - b.data()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST_F(ContextualFixture, AggregatorSummarizesAttributesAndEntities) {
  HierarchicalAggregator aggregator(lm_.get(), 0.0f, rng_);
  const Hhg hhg = Hhg::Build({MakeEntity("adobe spark", "design suite")});
  ContextualConfig config;
  ContextualEmbedder embedder(lm_.get(), config, rng_);
  Tensor wpc = embedder.Compute(hhg, false, rng_);
  std::vector<Tensor> attrs;
  for (int a : hhg.entity(0).attributes) {
    Tensor emb = aggregator.SummarizeAttribute(
        wpc, hhg.attribute(a).token_seq, false, rng_);
    EXPECT_EQ(emb.dim(0), 1);
    EXPECT_EQ(emb.dim(1), lm_->dim());
    EXPECT_EQ(aggregator.last_token_attention().size(),
              hhg.attribute(a).token_seq.size());
    attrs.push_back(emb);
  }
  Tensor entity = aggregator.SummarizeEntity(attrs);
  EXPECT_EQ(entity.dim(1), 2 * lm_->dim());
}

TEST_F(ContextualFixture, ComparatorStrategiesProduceSimilarityRows) {
  Rng rng(9);
  for (ViewCombination strategy :
       {ViewCombination::kViewAverage, ViewCombination::kSharedSpace,
        ViewCombination::kWeightAverage}) {
    HierarchicalComparator comparator(lm_.get(), 2, strategy, rng);
    Tensor a1 = Tensor::Randn({1, lm_->dim()}, rng);
    Tensor a2 = Tensor::Randn({1, lm_->dim()}, rng);
    Tensor s1 = comparator.CompareAttribute(a1, a2, false, rng);
    Tensor s2 = comparator.CompareAttribute(a2, a1, false, rng);
    EXPECT_EQ(s1.dim(1), lm_->dim());
    Tensor left = Tensor::Randn({1, 2 * lm_->dim()}, rng);
    Tensor right = Tensor::Randn({1, 2 * lm_->dim()}, rng);
    Tensor combined = comparator.CombineViews({s1, s2}, left, right);
    EXPECT_EQ(combined.dim(0), 1);
    EXPECT_EQ(combined.dim(1), lm_->dim());
  }
}

TEST_F(ContextualFixture, WeightAverageAttentionSumsToOne) {
  Rng rng(10);
  HierarchicalComparator comparator(
      lm_.get(), 3, ViewCombination::kWeightAverage, rng);
  std::vector<Tensor> sims;
  for (int i = 0; i < 3; ++i) sims.push_back(Tensor::Randn({1, lm_->dim()}, rng));
  Tensor left = Tensor::Randn({1, 3 * lm_->dim()}, rng);
  Tensor right = Tensor::Randn({1, 3 * lm_->dim()}, rng);
  comparator.CombineViews(sims, left, right);
  const Tensor& w = comparator.last_view_weights();
  ASSERT_EQ(w.dim(1), 3);
  float sum = 0.0f;
  for (int i = 0; i < 3; ++i) sum += w.at(0, i);
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(EntityAlignerTest, NoNeighborsIsIdentity) {
  Rng rng(11);
  EntityAligner aligner(4, rng);
  Tensor embs = Tensor::Randn({3, 4}, rng);
  Tensor aligned = aligner.Align(embs, {{}, {}, {}});
  for (size_t i = 0; i < embs.data().size(); ++i) {
    EXPECT_FLOAT_EQ(aligned.data()[i], embs.data()[i]);
  }
}

TEST(EntityAlignerTest, NeighborsChangeEmbeddingAndKeepShape) {
  Rng rng(12);
  EntityAligner aligner(4, rng);
  Tensor embs = Tensor::Randn({3, 4}, rng);
  Tensor aligned = aligner.Align(embs, {{1, 2}, {0}, {0}});
  EXPECT_EQ(aligned.shape(), embs.shape());
  float diff = 0.0f;
  for (size_t i = 0; i < embs.data().size(); ++i) {
    diff += std::abs(aligned.data()[i] - embs.data()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(EntityAlignerTest, GradientsFlowThroughAlignment) {
  Rng rng(13);
  EntityAligner aligner(4, rng);
  Tensor embs = Tensor::Randn({2, 4}, rng, 1.0f, /*requires_grad=*/true);
  Tensor aligned = aligner.Align(embs, {{1}, {0}});
  Sum(Mul(aligned, aligned)).Backward();
  EXPECT_FALSE(embs.grad().empty());
  for (const Tensor& p : aligner.Parameters()) {
    EXPECT_FALSE(p.grad().empty());
  }
}

}  // namespace
}  // namespace hiergat
