#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace hiergat {
namespace obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadRing& TraceRecorder::RingForThisThread() {
  // The shared_ptr keeps the ring alive in the registry even after the
  // thread exits, so short-lived worker threads still appear in the
  // exported trace.
  thread_local std::shared_ptr<ThreadRing> ring = [this] {
    auto fresh = std::make_shared<ThreadRing>();
    std::lock_guard<std::mutex> lock(rings_mutex_);
    fresh->tid = next_tid_++;
    rings_.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

void TraceRecorder::Record(const char* name, uint64_t start_ns,
                           uint64_t dur_ns) {
  ThreadRing& ring = RingForThisThread();
  // The ring's mutex is only ever contended by a snapshot/Clear; for the
  // owning thread this is an uncontended lock (a couple of atomics).
  std::lock_guard<std::mutex> lock(ring.mutex);
  if (ring.events.size() < kEventsPerThread) {
    ring.events.push_back({name, start_ns, dur_ns});
    ring.next = ring.events.size() % kEventsPerThread;
    return;
  }
  ring.events[ring.next] = {name, start_ns, dur_ns};
  ring.next = (ring.next + 1) % kEventsPerThread;
  ring.wrapped = true;
}

void TraceRecorder::SetCurrentThreadName(const std::string& name) {
  ThreadRing& ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.name = name;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> rings_lock(rings_mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
  }
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> rings_lock(rings_mutex_);
  size_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    total += ring->events.size();
  }
  return total;
}

std::string TraceRecorder::ChromeTraceJson() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "{\"traceEvents\":[";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"hiergat\"}}";
  std::lock_guard<std::mutex> rings_lock(rings_mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    if (!ring->name.empty()) {
      out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
          << ring->tid << ",\"args\":{\"name\":\"" << ring->name << "\"}}";
    }
    for (const TraceEvent& event : ring->events) {
      out << ",{\"name\":\"" << event.name << "\",\"ph\":\"X\",\"pid\":0"
          << ",\"tid\":" << ring->tid
          << ",\"ts\":" << static_cast<double>(event.start_ns) * 1e-3
          << ",\"dur\":" << static_cast<double>(event.dur_ns) * 1e-3 << "}";
    }
  }
  out << "]}";
  return out.str();
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = ChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::fclose(file) == 0 && written == json.size();
  return ok;
}

void SetTraceThreadName(const std::string& name) {
  TraceRecorder::Global().SetCurrentThreadName(name);
}

}  // namespace obs
}  // namespace hiergat
