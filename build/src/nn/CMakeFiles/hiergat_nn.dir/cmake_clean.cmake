file(REMOVE_RECURSE
  "CMakeFiles/hiergat_nn.dir/attention.cc.o"
  "CMakeFiles/hiergat_nn.dir/attention.cc.o.d"
  "CMakeFiles/hiergat_nn.dir/embedding.cc.o"
  "CMakeFiles/hiergat_nn.dir/embedding.cc.o.d"
  "CMakeFiles/hiergat_nn.dir/gru.cc.o"
  "CMakeFiles/hiergat_nn.dir/gru.cc.o.d"
  "CMakeFiles/hiergat_nn.dir/linear.cc.o"
  "CMakeFiles/hiergat_nn.dir/linear.cc.o.d"
  "CMakeFiles/hiergat_nn.dir/mlp.cc.o"
  "CMakeFiles/hiergat_nn.dir/mlp.cc.o.d"
  "CMakeFiles/hiergat_nn.dir/optimizer.cc.o"
  "CMakeFiles/hiergat_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/hiergat_nn.dir/serialize.cc.o"
  "CMakeFiles/hiergat_nn.dir/serialize.cc.o.d"
  "CMakeFiles/hiergat_nn.dir/transformer.cc.o"
  "CMakeFiles/hiergat_nn.dir/transformer.cc.o.d"
  "libhiergat_nn.a"
  "libhiergat_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hiergat_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
