#include "tensor/graph.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/threadpool.h"

namespace hiergat {
namespace graph {

namespace {

// Arena slots are rounded to 16 floats (64 bytes): values never share a
// cache line, and first-fit fragmentation stays bounded.
constexpr size_t kSlotAlignFloats = 16;
// Arena blocks kept per graph for concurrent replays; excess frees.
constexpr size_t kMaxFreeArenas = 4;

size_t RoundSlot(size_t floats) {
  return (floats + kSlotAlignFloats - 1) / kSlotAlignFloats *
         kSlotAlignFloats;
}

obs::Counter& Compiles() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("hiergat.graph.compiles");
  return c;
}
obs::Counter& Replays() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("hiergat.graph.replays");
  return c;
}
obs::Counter& Folded() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("hiergat.graph.folded_nodes");
  return c;
}
obs::Counter& ArenaReuse() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("hiergat.graph.arena_reuse");
  return c;
}
obs::Gauge& PlanBytesGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("hiergat.graph.plan_bytes");
  return g;
}
/// Arena footprint across all live compiled graphs — the counterpart of
/// the `hiergat.tensor.pool.*` counters the eager path drives.
obs::Gauge& LiveArenaBytes() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("hiergat.graph.live_arena_bytes");
  return g;
}

/// Sampled per-node replay wall time in seconds (tracing enabled only).
obs::Histogram& NodeSeconds() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "hiergat.graph.node_seconds",
      obs::Histogram::ExponentialBounds(1e-7, 4.0, 12));
  return h;
}

/// Per-op-name metric bundle behind the `hiergat.graph.node.<name>.*`
/// family. Resolved once per name at plan time (the name set is the
/// fixed set of op literals), so replay touches only the atomics.
struct NodeCounters {
  obs::Counter* replays = nullptr;
  obs::Counter* ns = nullptr;  ///< Sampled wall time; grows only under tracing.
  obs::Counter* est_flops = nullptr;
  obs::Counter* est_bytes = nullptr;
};

NodeCounters* CountersForName(const char* name) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<NodeCounters>>* by_name =
      new std::map<std::string, std::unique_ptr<NodeCounters>>();
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = (*by_name)[name];
  if (!slot) {
    slot = std::make_unique<NodeCounters>();
    const std::string prefix = std::string("hiergat.graph.node.") + name;
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    slot->replays = &registry.GetCounter(prefix + ".replays");
    slot->ns = &registry.GetCounter(prefix + ".ns");
    slot->est_flops = &registry.GetCounter(prefix + ".est_flops");
    slot->est_bytes = &registry.GetCounter(prefix + ".est_bytes");
  }
  return slot.get();
}

}  // namespace

struct CompiledGraph::Impl {
  enum class Kind { kConstant, kInput, kArena, kView };

  struct Value {
    Kind kind = Kind::kConstant;
    Shape shape;
    size_t size = 0;  ///< Exact floats.
    /// Constants: the capture-time impl, retained so the replay can
    /// resolve its buffer live (in-place edits to unfolded leaves such
    /// as raw weight matrices stay visible).
    std::shared_ptr<internal_tensor::TensorImpl> keep;
    int input_index = -1;   ///< kInput
    int def_node = -1;      ///< kArena
    int last_use = -1;      ///< kArena; inclusive node index
    int root = -1;          ///< kView: non-view base after resolution
    size_t view_offset = 0; ///< kView: floats from root start
    size_t arena_offset = 0;
  };

  struct Node {
    const char* name = nullptr;  ///< Static-lifetime op name.
    NodeFn fn;
    std::vector<int> inputs;
    std::vector<int> scratch;
    int output = -1;
    int64_t flops = -1;  ///< From Record; -1 = default to output size.
    int64_t bytes = -1;  ///< From Record; -1 = planner's f32 traffic.
    NodeCounters* counters = nullptr;  ///< Resolved at plan time.
  };

  std::vector<Value> values;
  std::vector<Node> nodes;
  std::vector<int> input_ids;
  std::vector<int> output_ids;
  size_t arena_floats = 0;
  size_t max_node_inputs = 0;
  size_t max_node_scratch = 0;
  PlanStats stats;
  std::vector<PlannedValue> plan;
  std::vector<NodeCost> node_costs;
};

namespace {

using Impl = CompiledGraph::Impl;
using Kind = Impl::Kind;

/// Per-thread capture state. Ops feed the recorder through the hooks
/// below; GraphCapture::Finish turns it into a CompiledGraph.
struct Recorder {
  Impl g;
  std::unordered_map<const internal_tensor::TensorImpl*, int> ids;
  /// Impls created during the capture that no Record/RecordView call
  /// has claimed yet. Nonempty at Finish — or consumed as an op input —
  /// means some op has no replay closure, so the trace must not replay.
  /// Values are retained: with every capture-time impl pinned (here or
  /// in a Value's `keep`), a freed impl's address can never be recycled
  /// into a colliding key while the capture is live.
  std::unordered_map<const internal_tensor::TensorImpl*,
                     std::shared_ptr<internal_tensor::TensorImpl>>
      unclaimed;
  bool poisoned = false;
  std::string poison_reason;

  void Poison(const char* what) {
    if (!poisoned) {
      poisoned = true;
      poison_reason = what;
    }
  }

  int AddValue(Impl::Value value, const internal_tensor::TensorImpl* key) {
    const int id = static_cast<int>(g.values.size());
    g.values.push_back(std::move(value));
    if (key != nullptr) ids.emplace(key, id);
    return id;
  }

  /// Value id for `t`, interning never-seen tensors as constant leaves.
  /// Returns -1 (capture poisoned) when `t` is an unclaimed node.
  int Intern(const Tensor& t) {
    const internal_tensor::TensorImpl* key = t.impl().get();
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    if (unclaimed.count(key) > 0) {
      Poison("an op consumed the result of an unrecorded op");
      return -1;
    }
    Impl::Value v;
    v.kind = Kind::kConstant;
    v.shape = t.shape();
    v.size = t.data().size();
    v.keep = t.impl();
    return AddValue(std::move(v), key);
  }
};

thread_local Recorder* tls_recorder = nullptr;

int RootOf(const Impl& g, int id) {
  return g.values[static_cast<size_t>(id)].kind == Kind::kView
             ? g.values[static_cast<size_t>(id)].root
             : id;
}

/// Resolves views, prunes unreferenced values, computes live ranges,
/// and packs arena values first-fit. Mutates `g` in place.
void PlanGraph(Impl* g) {
  // 1. Collapse view chains to a non-view root + cumulative offset.
  //    Bases always precede their views, so one id-ordered pass settles
  //    every chain.
  for (Impl::Value& v : g->values) {
    if (v.kind != Kind::kView) continue;
    int root = v.root;
    size_t offset = v.view_offset;
    while (g->values[static_cast<size_t>(root)].kind == Kind::kView) {
      offset += g->values[static_cast<size_t>(root)].view_offset;
      root = g->values[static_cast<size_t>(root)].root;
    }
    v.root = root;
    v.view_offset = offset;
  }

  // 2. Prune values nothing references (mostly constants folding left
  //    behind): they would otherwise pin capture-time buffers for the
  //    graph's whole lifetime.
  std::vector<char> used(g->values.size(), 0);
  auto mark = [&](int id) {
    used[static_cast<size_t>(id)] = 1;
    const int root = RootOf(*g, id);
    used[static_cast<size_t>(root)] = 1;
  };
  for (const Impl::Node& node : g->nodes) {
    for (int id : node.inputs) mark(id);
    for (int id : node.scratch) mark(id);
    mark(node.output);
  }
  for (int id : g->output_ids) mark(id);
  for (int id : g->input_ids) mark(id);  // Input indexing is part of the API.
  std::vector<int> remap(g->values.size(), -1);
  std::vector<Impl::Value> kept;
  kept.reserve(g->values.size());
  for (size_t i = 0; i < g->values.size(); ++i) {
    if (!used[i]) continue;
    remap[i] = static_cast<int>(kept.size());
    kept.push_back(std::move(g->values[i]));
  }
  g->values = std::move(kept);
  for (Impl::Value& v : g->values) {
    if (v.kind == Kind::kView) v.root = remap[static_cast<size_t>(v.root)];
  }
  for (Impl::Node& node : g->nodes) {
    for (int& id : node.inputs) id = remap[static_cast<size_t>(id)];
    for (int& id : node.scratch) id = remap[static_cast<size_t>(id)];
    node.output = remap[static_cast<size_t>(node.output)];
  }
  for (int& id : g->input_ids) id = remap[static_cast<size_t>(id)];
  for (int& id : g->output_ids) id = remap[static_cast<size_t>(id)];

  // 3. Live ranges for arena values: [def_node, last consuming node].
  //    A use through a view is a use of its root; graph outputs are
  //    pinned past the last node so the copy-out always reads live
  //    bytes.
  for (Impl::Value& v : g->values) {
    if (v.kind == Kind::kArena) v.last_use = v.def_node;
  }
  const int num_nodes = static_cast<int>(g->nodes.size());
  for (int n = 0; n < num_nodes; ++n) {
    for (int id : g->nodes[static_cast<size_t>(n)].inputs) {
      Impl::Value& root = g->values[static_cast<size_t>(RootOf(*g, id))];
      if (root.kind == Kind::kArena) root.last_use = std::max(root.last_use, n);
    }
  }
  for (int id : g->output_ids) {
    Impl::Value& root = g->values[static_cast<size_t>(RootOf(*g, id))];
    if (root.kind == Kind::kArena) root.last_use = num_nodes;
  }

  // 4. First-fit packing in definition order. A slot is free for a
  //    value when no already-placed value with an overlapping live
  //    range overlaps it in the arena — the planner invariant the
  //    graph tests assert directly from plan().
  struct Placed {
    size_t begin, end;
    int def, last;
  };
  std::vector<Placed> placed;
  std::vector<std::pair<size_t, size_t>> busy;
  size_t high_water = 0;
  size_t eager_floats = 0;
  for (Impl::Value& v : g->values) {
    if (v.kind != Kind::kArena) continue;
    const size_t slot = RoundSlot(v.size);
    busy.clear();
    for (const Placed& p : placed) {
      if (p.last < v.def_node || p.def > v.last_use) continue;
      busy.emplace_back(p.begin, p.end);
    }
    std::sort(busy.begin(), busy.end());
    size_t offset = 0;
    for (const auto& [begin, end] : busy) {
      if (offset + slot <= begin) break;
      offset = std::max(offset, end);
    }
    v.arena_offset = offset;
    placed.push_back({offset, offset + slot, v.def_node, v.last_use});
    high_water = std::max(high_water, offset + slot);
    eager_floats += v.size;
    g->plan.push_back({offset, slot, v.def_node, v.last_use});
  }
  g->arena_floats = high_water;

  // Capture-time pins served their purpose; only constants keep their
  // impl (it holds the replay bytes).
  for (Impl::Value& v : g->values) {
    if (v.kind != Kind::kConstant) v.keep.reset();
  }

  for (const Impl::Node& node : g->nodes) {
    g->max_node_inputs = std::max(g->max_node_inputs, node.inputs.size());
    g->max_node_scratch = std::max(g->max_node_scratch, node.scratch.size());
  }

  // 5. Static per-node cost annotations. FLOPs come from the Record call
  //    (default: one per output element); bytes are the node's f32
  //    traffic — every input read, scratch, and the output write. These
  //    are estimates, not measurements: their job is to rank nodes and
  //    give trace spans arithmetic-intensity context, so a cache-line
  //    model would be false precision.
  g->node_costs.reserve(g->nodes.size());
  for (Impl::Node& node : g->nodes) {
    const auto size_of = [&](int id) {
      return static_cast<int64_t>(g->values[static_cast<size_t>(id)].size);
    };
    if (node.flops < 0) node.flops = size_of(node.output);
    if (node.bytes < 0) {
      // No override from Record: default to the node's visible f32
      // traffic. Quantized-weight GEMMs pass exact byte counts because
      // their weight blocks live in the closure, not in a value.
      int64_t traffic_floats = size_of(node.output);
      for (int id : node.inputs) traffic_floats += size_of(id);
      for (int id : node.scratch) traffic_floats += size_of(id);
      node.bytes = traffic_floats * static_cast<int64_t>(sizeof(float));
    }
    node.counters = CountersForName(node.name);
    g->node_costs.push_back({node.name, node.flops, node.bytes});
    g->stats.est_flops += node.flops;
    g->stats.est_bytes += node.bytes;
  }

  g->stats.num_nodes = num_nodes;
  g->stats.num_values = static_cast<int>(g->values.size());
  g->stats.plan_bytes = high_water * sizeof(float);
  g->stats.eager_bytes = eager_floats * sizeof(float);
}

}  // namespace

// -- CompiledGraph -------------------------------------------------------

CompiledGraph::CompiledGraph() : impl_(new Impl) {}

CompiledGraph::~CompiledGraph() {
  LiveArenaBytes().Add(-static_cast<double>(impl_->stats.plan_bytes));
}

int CompiledGraph::num_inputs() const {
  return static_cast<int>(impl_->input_ids.size());
}
int CompiledGraph::num_outputs() const {
  return static_cast<int>(impl_->output_ids.size());
}
const Shape& CompiledGraph::input_shape(int i) const {
  return impl_->values[static_cast<size_t>(impl_->input_ids[static_cast<size_t>(i)])]
      .shape;
}
const Shape& CompiledGraph::output_shape(int i) const {
  return impl_
      ->values[static_cast<size_t>(impl_->output_ids[static_cast<size_t>(i)])]
      .shape;
}
int64_t CompiledGraph::output_size(int i) const {
  return static_cast<int64_t>(
      impl_->values[static_cast<size_t>(impl_->output_ids[static_cast<size_t>(i)])]
          .size);
}
const PlanStats& CompiledGraph::stats() const { return impl_->stats; }
const std::vector<PlannedValue>& CompiledGraph::plan() const {
  return impl_->plan;
}
const std::vector<NodeCost>& CompiledGraph::node_costs() const {
  return impl_->node_costs;
}

std::unique_ptr<float[]> CompiledGraph::AcquireArena() const {
  if (impl_->arena_floats == 0) return nullptr;
  {
    std::lock_guard<std::mutex> lock(arena_mutex_);
    if (!free_arenas_.empty()) {
      std::unique_ptr<float[]> arena = std::move(free_arenas_.back());
      free_arenas_.pop_back();
      ArenaReuse().Increment(static_cast<int64_t>(impl_->stats.plan_bytes));
      return arena;
    }
  }
  // Uninitialized on purpose: nodes fully overwrite (or explicitly
  // zero, for accumulating kernels) every byte they read back.
  return std::unique_ptr<float[]>(new float[impl_->arena_floats]);
}

void CompiledGraph::ReleaseArena(std::unique_ptr<float[]> arena) const {
  if (arena == nullptr) return;
  std::lock_guard<std::mutex> lock(arena_mutex_);
  if (free_arenas_.size() < kMaxFreeArenas) {
    free_arenas_.push_back(std::move(arena));
  }
}

void CompiledGraph::Run(const float* const* inputs, float* const* outputs,
                        ThreadPool* pool) const {
  const Impl& g = *impl_;
  std::unique_ptr<float[]> arena = AcquireArena();
  float* base = arena.get();

  // Resolve every value to its replay buffer. Constants resolve through
  // their retained impl (live weight bytes), inputs through the caller,
  // arena values into the block, views as root + offset.
  std::vector<const float*> ptrs(g.values.size());
  for (size_t i = 0; i < g.values.size(); ++i) {
    const Impl::Value& v = g.values[i];
    switch (v.kind) {
      case Kind::kConstant:
        ptrs[i] = v.keep->data().data();
        break;
      case Kind::kInput:
        ptrs[i] = inputs[v.input_index];
        break;
      case Kind::kArena:
        ptrs[i] = base + v.arena_offset;
        break;
      case Kind::kView:
        ptrs[i] = ptrs[static_cast<size_t>(v.root)] + v.view_offset;
        break;
    }
  }

  std::vector<const float*> in(g.max_node_inputs);
  std::vector<float*> scratch(g.max_node_scratch);
#if !defined(HIERGAT_NO_TRACING)
  // Per-node wall time is sampled only while a trace is being recorded;
  // the untraced replay path costs one relaxed load plus three counter
  // adds per node. HIERGAT_NO_TRACING compiles the sampling out.
  const bool tracing = obs::TraceRecorder::Global().enabled();
  const uint64_t trace_id =
      tracing ? obs::CurrentTraceContext().trace_id : 0;
#endif
  for (const Impl::Node& node : g.nodes) {
    for (size_t k = 0; k < node.inputs.size(); ++k) {
      in[k] = ptrs[static_cast<size_t>(node.inputs[k])];
    }
    for (size_t k = 0; k < node.scratch.size(); ++k) {
      scratch[k] =
          base + g.values[static_cast<size_t>(node.scratch[k])].arena_offset;
    }
    float* out =
        base + g.values[static_cast<size_t>(node.output)].arena_offset;
#if !defined(HIERGAT_NO_TRACING)
    if (tracing) {
      const uint64_t start_ns = obs::MonotonicNowNs();
      node.fn(in.data(), scratch.data(), out, pool);
      const uint64_t dur_ns = obs::MonotonicNowNs() - start_ns;
      obs::TraceRecorder::Global().Record(node.name, start_ns, dur_ns,
                                          trace_id, node.flops, node.bytes);
      node.counters->ns->Increment(static_cast<int64_t>(dur_ns));
      NodeSeconds().Observe(static_cast<double>(dur_ns) * 1e-9);
    } else {
      node.fn(in.data(), scratch.data(), out, pool);
    }
#else
    node.fn(in.data(), scratch.data(), out, pool);
#endif
    node.counters->replays->Increment();
    node.counters->est_flops->Increment(node.flops);
    node.counters->est_bytes->Increment(node.bytes);
  }

  for (size_t i = 0; i < g.output_ids.size(); ++i) {
    const Impl::Value& v =
        g.values[static_cast<size_t>(g.output_ids[i])];
    std::memcpy(outputs[i], ptrs[static_cast<size_t>(g.output_ids[i])],
                v.size * sizeof(float));
  }
  ReleaseArena(std::move(arena));
  Replays().Increment();
}

// -- GraphCapture --------------------------------------------------------

bool GraphCapture::Active() { return tls_recorder != nullptr; }

GraphCapture::GraphCapture() {
  HG_CHECK(tls_recorder == nullptr)
      << "nested GraphCapture on one thread is not supported";
  tls_recorder = new Recorder();
}

GraphCapture::~GraphCapture() {
  delete tls_recorder;  // Null (and owned elsewhere) after Finish().
  tls_recorder = nullptr;
}

bool GraphCapture::ok() const {
  return tls_recorder != nullptr && !tls_recorder->poisoned;
}

void GraphCapture::MarkInput(const Tensor& t) {
  Recorder* r = tls_recorder;
  HG_CHECK(r != nullptr) << "MarkInput after Finish";
  if (r->poisoned) return;
  const internal_tensor::TensorImpl* key = t.impl().get();
  if (r->ids.count(key) > 0) {
    r->Poison("MarkInput called after the tensor was already used");
    return;
  }
  r->unclaimed.erase(key);
  Impl::Value v;
  v.kind = Kind::kInput;
  v.shape = t.shape();
  v.size = t.data().size();
  v.keep = t.impl();  // Pin against address recycling; dropped at plan.
  v.input_index = static_cast<int>(r->g.input_ids.size());
  r->g.input_ids.push_back(r->AddValue(std::move(v), key));
}

void GraphCapture::MarkOutput(const Tensor& t) {
  Recorder* r = tls_recorder;
  HG_CHECK(r != nullptr) << "MarkOutput after Finish";
  if (r->poisoned) return;
  const int id = r->Intern(t);
  if (id < 0) return;
  r->g.output_ids.push_back(id);
}

StatusOr<std::unique_ptr<CompiledGraph>> GraphCapture::Finish() {
  Recorder* r = tls_recorder;
  HG_CHECK(r != nullptr) << "Finish may only be called once";
  tls_recorder = nullptr;  // Stop recording before planning.
  std::unique_ptr<Recorder> owned(r);
  if (r->poisoned) {
    return Status::Unimplemented("graph capture: " + r->poison_reason);
  }
  if (!r->unclaimed.empty()) {
    return Status::Unimplemented(
        "graph capture: " + std::to_string(r->unclaimed.size()) +
        " tensor node(s) were created by ops without replay closures");
  }

  auto compiled = std::unique_ptr<CompiledGraph>(new CompiledGraph());
  *compiled->impl_ = std::move(r->g);
  PlanGraph(compiled->impl_.get());

  const PlanStats& stats = compiled->impl_->stats;
  Compiles().Increment();
  Folded().Increment(stats.num_folded);
  PlanBytesGauge().Set(static_cast<double>(stats.plan_bytes));
  LiveArenaBytes().Add(static_cast<double>(stats.plan_bytes));
  return compiled;
}

// -- Recording hooks -----------------------------------------------------

void OnTensorCreated(
    const std::shared_ptr<internal_tensor::TensorImpl>& impl) {
  if (Recorder* r = tls_recorder; r != nullptr && !r->poisoned) {
    r->unclaimed.emplace(impl.get(), impl);
  }
}

void OnUnsupported(const char* what) {
  if (Recorder* r = tls_recorder) r->Poison(what);
}

void Record(const Tensor& out, const std::vector<Tensor>& inputs,
            const char* name, NodeFn fn,
            const std::vector<size_t>& scratch_sizes, int64_t flops,
            int64_t bytes) {
  Recorder* r = tls_recorder;
  if (r == nullptr || r->poisoned) return;
  r->unclaimed.erase(out.impl().get());

  std::vector<int> in_ids;
  in_ids.reserve(inputs.size());
  bool all_constant = true;
  for (const Tensor& t : inputs) {
    const int id = r->Intern(t);
    if (id < 0) return;
    all_constant =
        all_constant && r->g.values[static_cast<size_t>(id)].kind ==
                            Kind::kConstant;
    in_ids.push_back(id);
  }

  if (all_constant) {
    // Constant folding: every input is fixed at capture time, so the
    // eagerly computed `out` is too. Retain it and skip the node —
    // folds cascade, so e.g. positional encodings and their downstream
    // scaling vanish from the replay entirely.
    Impl::Value v;
    v.kind = Kind::kConstant;
    v.shape = out.shape();
    v.size = out.data().size();
    v.keep = out.impl();
    r->AddValue(std::move(v), out.impl().get());
    r->g.stats.num_folded++;
    return;
  }

  Impl::Value v;
  v.kind = Kind::kArena;
  v.shape = out.shape();
  v.size = out.data().size();
  v.keep = out.impl();  // Pin against address recycling; dropped at plan.
  v.def_node = static_cast<int>(r->g.nodes.size());
  const int out_id = r->AddValue(std::move(v), out.impl().get());

  Impl::Node node;
  node.name = name;
  node.fn = std::move(fn);
  node.inputs = std::move(in_ids);
  node.output = out_id;
  node.flops = flops;
  node.bytes = bytes;
  for (size_t floats : scratch_sizes) {
    Impl::Value s;
    s.kind = Kind::kArena;
    s.shape = {static_cast<int>(floats)};
    s.size = floats;
    s.def_node = static_cast<int>(r->g.nodes.size());
    s.last_use = s.def_node;
    node.scratch.push_back(r->AddValue(std::move(s), nullptr));
  }
  r->g.nodes.push_back(std::move(node));
}

void RecordView(const Tensor& out, const Tensor& base, size_t offset_floats) {
  Recorder* r = tls_recorder;
  if (r == nullptr || r->poisoned) return;
  r->unclaimed.erase(out.impl().get());
  const int base_id = r->Intern(base);
  if (base_id < 0) return;

  if (r->g.values[static_cast<size_t>(base_id)].kind == Kind::kConstant) {
    // A view of a constant is a constant; `out` already holds the right
    // bytes (a copy for slices, shared storage for reshapes).
    Impl::Value v;
    v.kind = Kind::kConstant;
    v.shape = out.shape();
    v.size = out.data().size();
    v.keep = out.impl();
    r->AddValue(std::move(v), out.impl().get());
    r->g.stats.num_folded++;
    return;
  }

  Impl::Value v;
  v.kind = Kind::kView;
  v.shape = out.shape();
  v.size = out.data().size();
  v.keep = out.impl();  // Pin against address recycling; dropped at plan.
  v.root = base_id;
  v.view_offset = offset_floats;
  r->AddValue(std::move(v), out.impl().get());
  r->g.stats.num_views++;
}

}  // namespace graph
}  // namespace hiergat
