#ifndef HIERGAT_TEXT_HASHED_EMBEDDINGS_H_
#define HIERGAT_TEXT_HASHED_EMBEDDINGS_H_

#include <string>
#include <vector>

namespace hiergat {

/// FastText-style subword embeddings without a learned table.
///
/// The vector of a word is the average of deterministic pseudo-random
/// unit-variance vectors, one per character n-gram (n in [min_n, max_n],
/// with boundary markers '<' and '>'). Two consequences match §4.1 of
/// the paper: every unknown/brand-specific surface form ("coolmax",
/// "tp-link") gets a *distinct* vector, and morphologically similar
/// words get correlated vectors because they share n-grams. These
/// vectors initialize the trainable embedding tables and are then
/// fine-tuned through the task loss.
class HashedEmbeddings {
 public:
  explicit HashedEmbeddings(int dim, int min_n = 3, int max_n = 5,
                            uint64_t seed = 0x5eedf00dULL)
      : dim_(dim), min_n_(min_n), max_n_(max_n), seed_(seed) {}

  /// Deterministic `dim`-dimensional vector for `word`.
  std::vector<float> WordVector(const std::string& word) const;

  /// Cosine similarity between the vectors of two words.
  float Similarity(const std::string& a, const std::string& b) const;

  int dim() const { return dim_; }

 private:
  /// Accumulates the hashed vector of one n-gram into `acc`.
  void AccumulateNgram(uint64_t hash, std::vector<float>* acc) const;

  int dim_;
  int min_n_;
  int max_n_;
  uint64_t seed_;
};

}  // namespace hiergat

#endif  // HIERGAT_TEXT_HASHED_EMBEDDINGS_H_
