#include "tensor/threadpool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace hiergat {
namespace {

TEST(ThreadPoolTest, StartAndShutdown) {
  // Construction spawns the workers; destruction must join them even
  // when no task was ever dispatched (workers park immediately).
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
}

TEST(ThreadPoolTest, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> calls;
  pool.ParallelFor(0, 100, 10, [&](int64_t b, int64_t e) {
    calls.push_back(static_cast<int>(e - b));
  });
  // Inline execution: one call covering the whole range, so unguarded
  // access to `calls` is safe.
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], 100);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10007;  // Prime: exercises the ragged tail chunk.
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, 64, [&](int64_t b, int64_t e) {
    ASSERT_LT(b, e);
    for (int64_t i = b; i < e; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunkBoundariesAreDeterministic) {
  // The determinism contract: chunk boundaries derive from the
  // arguments alone. Collect them across repeated dispatches and
  // require the identical partition every time.
  ThreadPool pool(3);
  std::vector<std::pair<int64_t, int64_t>> first;
  for (int rep = 0; rep < 20; ++rep) {
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    pool.ParallelFor(0, 1000, 96, [&](int64_t b, int64_t e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    if (rep == 0) {
      first = chunks;
    } else {
      EXPECT_EQ(chunks, first);
    }
  }
}

TEST(ThreadPoolTest, ParkedWorkersWakeForLateTask) {
  ThreadPool pool(4);
  // Let the workers exhaust their spin budget and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 1000, 10, [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> outer_chunks{0};
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t ob, int64_t oe) {
    outer_chunks.fetch_add(1, std::memory_order_relaxed);
    // A nested call must not try to re-enter the (busy) pool.
    pool.ParallelFor(0, 100, 10, [&](int64_t b, int64_t e) {
      total.fetch_add(e - b, std::memory_order_relaxed);
      (void)ob;
      (void)oe;
    });
  });
  EXPECT_EQ(outer_chunks.load(), 8);
  EXPECT_EQ(total.load(), 8 * 100);
}

TEST(ThreadPoolTest, ScopedBanForcesInline) {
  ThreadPool pool(4);
  EXPECT_FALSE(ParallelismBanned());
  {
    ScopedParallelismBan ban;
    EXPECT_TRUE(ParallelismBanned());
    {
      ScopedParallelismBan nested;  // Counted: scopes nest.
      EXPECT_TRUE(ParallelismBanned());
    }
    EXPECT_TRUE(ParallelismBanned());
    std::vector<int> calls;  // Unguarded: inline means single-threaded.
    pool.ParallelFor(0, 1000, 10, [&](int64_t b, int64_t e) {
      calls.push_back(static_cast<int>(e - b));
    });
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0], 1000);
  }
  EXPECT_FALSE(ParallelismBanned());
}

TEST(ThreadPoolTest, ConcurrentDispatchersSerialize) {
  // Several threads hammer the same pool; every dispatch must complete
  // with its own full coverage. TSan-checked via the `tsan` preset.
  ThreadPool pool(4);
  constexpr int kDispatchers = 4;
  constexpr int kReps = 25;
  std::vector<std::thread> threads;
  std::vector<int64_t> sums(kDispatchers, 0);
  for (int t = 0; t < kDispatchers; ++t) {
    threads.emplace_back([&pool, &sums, t]() {
      for (int rep = 0; rep < kReps; ++rep) {
        std::atomic<int64_t> sum{0};
        pool.ParallelFor(0, 501, 7, [&](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) {
            sum.fetch_add(i, std::memory_order_relaxed);
          }
        });
        sums[static_cast<size_t>(t)] = sum.load();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kDispatchers; ++t) {
    EXPECT_EQ(sums[static_cast<size_t>(t)], 501 * 500 / 2);
  }
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  ThreadPool& pool = ThreadPool::Global();
  EXPECT_GE(pool.num_threads(), 1);
  std::atomic<int64_t> count{0};
  pool.ParallelFor(0, 64, 8, [&](int64_t b, int64_t e) {
    count.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace hiergat
