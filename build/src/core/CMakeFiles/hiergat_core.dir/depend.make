# Empty dependencies file for hiergat_core.
# This may be replaced when dependencies are built.
