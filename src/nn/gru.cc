#include "nn/gru.h"

#include "core/logging.h"
#include "tensor/ops.h"

namespace hiergat {

Gru::Gru(int input_dim, int hidden_dim, Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  wz_ = std::make_unique<Linear>(input_dim, hidden_dim, rng, true);
  uz_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng, false);
  wr_ = std::make_unique<Linear>(input_dim, hidden_dim, rng, true);
  ur_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng, false);
  wn_ = std::make_unique<Linear>(input_dim, hidden_dim, rng, true);
  un_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng, false);
}

Tensor Gru::Forward(const Tensor& x, bool reverse) const {
  HG_CHECK_EQ(x.dim(1), input_dim_);
  const int len = x.dim(0);
  // Input projections are time-independent: hoist them out of the
  // recurrence as three sequence-wide fused GEMMs ([len, hidden] each)
  // instead of 3 * len per-step [1, hidden] GEMM nodes.
  Tensor xz = wz_->Forward(x);
  Tensor xr = wr_->Forward(x);
  Tensor xn = wn_->Forward(x);
  Tensor h = Tensor::Zeros({1, hidden_dim_});
  std::vector<Tensor> states(static_cast<size_t>(len));
  Tensor ones = Tensor::Full({1, hidden_dim_}, 1.0f);
  for (int step = 0; step < len; ++step) {
    const int t = reverse ? len - 1 - step : step;
    Tensor z = Sigmoid(Add(Row(xz, t), uz_->Forward(h)));
    Tensor r = Sigmoid(Add(Row(xr, t), ur_->Forward(h)));
    Tensor n = Tanh(Add(Row(xn, t), un_->Forward(Mul(r, h))));
    h = Add(Mul(Sub(ones, z), h), Mul(z, n));
    states[static_cast<size_t>(t)] = h;
  }
  return ConcatRows(states);
}

std::vector<Tensor> Gru::Parameters() const {
  std::vector<Tensor> params;
  for (const Linear* l : {wz_.get(), uz_.get(), wr_.get(), ur_.get(),
                          wn_.get(), un_.get()}) {
    AppendParameters(&params, l->Parameters());
  }
  return params;
}

Tensor BiGru::Forward(const Tensor& x) const {
  return ConcatCols({fwd_->Forward(x, /*reverse=*/false),
                     bwd_->Forward(x, /*reverse=*/true)});
}

std::vector<Tensor> BiGru::Parameters() const {
  std::vector<Tensor> params = fwd_->Parameters();
  AppendParameters(&params, bwd_->Parameters());
  return params;
}

}  // namespace hiergat
