#ifndef HIERGAT_NN_LINEAR_H_
#define HIERGAT_NN_LINEAR_H_

#include <memory>
#include <vector>

#include "core/quant.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace hiergat {

/// Fully connected layer: y = x W + b for x of shape [n, in_features].
///
/// The weight owns a Q8_0 quantized slot (core/quant.h). While the slot
/// is inactive the layer is a plain f32 affine map. Activating it —
/// via NamedParameters::QuantizeAll or by loading a kQ8_0 checkpoint —
/// makes inference-mode Forward run the quantized-weight GEMM
/// (LinearQ8Op) instead; training-mode calls keep using the f32 weight,
/// whose values QuantizeAll rewrites to the dequantized ones so both
/// paths score identically.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng, bool use_bias = true);

  /// Applies the affine map to a [n, in_features] input.
  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

  void RegisterParameters(NamedParameters* out) const override {
    (void)out->AddQuantizable("weight", weight_, weight_q8_);
    if (bias_.defined()) (void)out->Add("bias", bias_);
  }

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

  /// True when Forward dispatches the quantized-weight kernel.
  bool quantized() const { return weight_q8_->active(); }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]; undefined when use_bias is false
  std::shared_ptr<q8::QuantizedTensor> weight_q8_ =
      std::make_shared<q8::QuantizedTensor>();
};

}  // namespace hiergat

#endif  // HIERGAT_NN_LINEAR_H_
