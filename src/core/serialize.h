#ifndef HIERGAT_CORE_SERIALIZE_H_
#define HIERGAT_CORE_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/quant.h"
#include "core/status.h"
#include "tensor/tensor.h"

namespace hiergat {

/// Versioned binary checkpoint format ("HGCK"), little-endian on every
/// host:
///
///   u32  magic            "HGCK" (0x4B434748 read as LE u32)
///   u32  format_version   currently 1
///   str  model_tag        e.g. "HierGAT" (str = u32 length + bytes)
///   u32  meta_count
///        (str key, str value) x meta_count      -- config, vocab, ...
///   u32  tensor_count
///        per tensor:
///          str  name      stable dotted path, e.g. "lm.encoder.layer0.attn.q0.weight"
///          u8   dtype     0 = f32, 1 = f16, 2 = q8_0 (stored precision;
///                         in-memory tensors are always f32)
///          u8   rank
///          i32  dims[rank]
///          u64  byte_len  f32/f16: numel * sizeof(dtype);
///                         q8_0: rows * ceil(cols / 32) * 36 (rank-1
///                         stores as one row)
///          payload        byte_len bytes, element-wise little-endian.
///                         q8_0 rows are sequences of 36-byte blocks:
///                         f32 LE scale + 32 int8 quants (core/quant.h),
///                         trailing partial blocks zero-padded
///   u32  crc32            over every preceding byte (poly 0xEDB88320)
///
/// Validation order on read: magic -> format version -> CRC -> bounds-
/// checked parse, so corrupt and future-version files fail loudly with a
/// Status (never UB) and a version bump is reported as such rather than
/// as a checksum mismatch.
inline constexpr uint32_t kCheckpointMagic = 0x4B434748u;  // "HGCK" on disk.
inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// Stored element type of a checkpoint tensor. kF16 halves fixture size
/// (used by the golden checkpoints); kF32 is lossless and the default.
/// kQ8_0 stores per-32-element blocks of f32 scale + int8 quants
/// (core/quant.h) — ~3.56x smaller than f32, used for quantized-weight
/// serving checkpoints.
enum class DType : uint8_t {
  kF32 = 0,
  kF16 = 1,
  kQ8_0 = 2,
};

/// CRC-32 (IEEE 802.3, poly 0xEDB88320, init/final 0xFFFFFFFF). Exposed
/// so tests can forge/verify footers.
uint32_t Crc32(const void* data, size_t len);
uint32_t Crc32(const std::string& bytes);

/// IEEE-754 binary16 conversion (round-to-nearest-even). f16 -> f32 ->
/// f16 round-trips exactly, which is what keeps save -> load -> save of
/// an f16 checkpoint byte-identical.
uint16_t FloatToHalf(float value);
float HalfToFloat(uint16_t bits);

/// Shortest decimal rendering of a float that parses back to the same
/// bits ("%.9g"); used for float-valued checkpoint metadata.
std::string FormatFloat(float value);

/// Writes `bytes` to `path` via a temporary file + rename, so readers
/// never observe a half-written checkpoint.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

/// An ordered name -> Tensor registry. Modules register their parameters
/// by stable dotted path (see Module::RegisterParameters); the same
/// registration drives both saving (TensorWriter::AddAll) and loading
/// (TensorReader::ReadAll writes into the registered handles in place).
class NamedParameters {
 public:
  /// Registers `tensor` under prefix + `name`. Duplicate names and
  /// undefined tensors are recorded as the first error (also returned).
  Status Add(const std::string& name, const Tensor& tensor);

  /// Registers every parameter of `module` under "name." — works for any
  /// type with a RegisterParameters(NamedParameters*) const member (the
  /// template keeps core free of an nn dependency).
  template <typename M>
  void AddModule(const std::string& name, const M& module) {
    prefix_ += name;
    prefix_ += '.';
    module.RegisterParameters(this);
    prefix_.resize(prefix_.size() - name.size() - 1);
  }

  /// Registers `tensor` like Add and additionally attaches the module's
  /// quantized-weight slot (nn::Linear / nn::Embedding own one per
  /// weight). When the slot is active its Q8_0 blocks are the storage
  /// of record: TensorWriter::AddAll serializes them verbatim (so
  /// quantized save→load→save is byte-stable) and TensorReader::ReadAll
  /// fills them from kQ8_0 checkpoint entries.
  Status AddQuantizable(const std::string& name, const Tensor& tensor,
                        std::shared_ptr<q8::QuantizedTensor> slot);

  /// The quantized slot registered for `name`, or nullptr.
  std::shared_ptr<q8::QuantizedTensor> FindQuantSlot(
      const std::string& name) const;

  /// Quantizes every slotted parameter in place with the scalar
  /// reference codec: fills each slot's blocks from the current f32
  /// values, then writes the dequantized values *back into the f32
  /// tensor* so eager f32 math and quantized kernels score from
  /// identical weights. FailedPrecondition when nothing is quantizable.
  Status QuantizeAll();

  /// Registration order is the serialization order.
  const std::vector<std::pair<std::string, Tensor>>& items() const {
    return items_;
  }

  /// The registered tensor, or nullptr if absent.
  const Tensor* Find(const std::string& name) const;

  /// First error recorded by Add (duplicate name / undefined tensor).
  const Status& status() const { return status_; }

 private:
  std::string prefix_;
  std::vector<std::pair<std::string, Tensor>> items_;
  std::unordered_map<std::string, size_t> index_;
  std::unordered_map<std::string, std::shared_ptr<q8::QuantizedTensor>>
      quant_slots_;
  Status status_;
};

/// Serializes named tensors plus string metadata into the checkpoint
/// format above. Everything is buffered; WriteFile is atomic.
class TensorWriter {
 public:
  explicit TensorWriter(std::string model_tag)
      : model_tag_(std::move(model_tag)) {}

  /// Sets (or overwrites) a metadata entry. Insertion order is the
  /// serialization order, so repeated Save calls are byte-stable.
  void SetMeta(const std::string& key, std::string value);
  void SetMetaInt(const std::string& key, int64_t value);
  void SetMetaFloat(const std::string& key, float value);
  void SetMetaBool(const std::string& key, bool value);

  /// Adds one tensor (values are copied). Duplicate names, undefined
  /// tensors, and rank > 2 are InvalidArgument. With kQ8_0 the f32
  /// values are quantized fresh with the scalar reference codec (rank
  /// must be 1 or 2; rank-2 quantizes per row).
  Status Add(const std::string& name, const Tensor& tensor,
             DType dtype = DType::kF32);

  /// Adds every registered tensor, failing on any registration error.
  /// Parameters with an *active* quantized slot (NamedParameters::
  /// AddQuantizable + QuantizeAll or a prior quantized load) are always
  /// written as kQ8_0 from the slot's stored blocks verbatim — never
  /// requantized — so quantized save -> load -> save is byte-identical.
  Status AddAll(const NamedParameters& params, DType dtype = DType::kF32);

  /// The complete serialized checkpoint (header, tensors, CRC footer).
  std::string SerializeToString() const;

  /// Serializes and writes atomically to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    Shape shape;
    std::vector<float> values;  ///< f32/f16 payload source (empty for q8).
    std::string raw;            ///< Pre-encoded kQ8_0 wire payload.
    DType dtype;
  };

  Status AddEntry(const std::string& name, const Tensor& tensor, DType dtype,
                  const q8::QuantizedTensor* slot);

  std::string model_tag_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::unordered_map<std::string, size_t> meta_index_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, size_t> entry_index_;
};

/// Parses and validates a checkpoint, then serves tensor reads into
/// pre-allocated tensors (the reader never constructs tensors itself, so
/// core needs no tensor-library symbols at link time).
class TensorReader {
 public:
  /// Reads and validates `path`. Truncated/corrupt files, wrong magic,
  /// and future format versions all return descriptive errors.
  static StatusOr<TensorReader> Open(const std::string& path);

  /// Same, over an in-memory image (takes ownership of the bytes).
  static StatusOr<TensorReader> Parse(std::string bytes);

  const std::string& model_tag() const { return model_tag_; }

  /// Metadata value, or nullptr if the key is absent.
  const std::string* FindMeta(const std::string& key) const;

  /// Metadata accessors that fail with NotFound / InvalidArgument.
  StatusOr<std::string> GetMeta(const std::string& key) const;
  StatusOr<int64_t> GetMetaInt(const std::string& key) const;
  StatusOr<float> GetMetaFloat(const std::string& key) const;
  StatusOr<bool> GetMetaBool(const std::string& key) const;

  /// Tensor names in file order.
  const std::vector<std::string>& TensorNames() const { return names_; }
  bool Contains(const std::string& name) const;

  /// Shape of a stored tensor, or nullptr if absent.
  const Shape* FindShape(const std::string& name) const;

  /// Decodes tensor `name` into `out`'s existing storage. Fails with
  /// NotFound for unknown names and InvalidArgument on shape mismatch.
  Status ReadInto(const std::string& name, Tensor* out) const;

  /// Strict bulk load: the registered name set must exactly equal the
  /// checkpoint's (missing and unexpected tensors are both errors), and
  /// every shape must match. Values are decoded into the registered
  /// handles in place.
  Status ReadAll(const NamedParameters& params) const;

  /// Total size of the validated checkpoint image.
  size_t file_bytes() const { return bytes_.size(); }

 private:
  struct Entry {
    Shape shape;
    DType dtype;
    size_t payload_offset;
    int64_t numel;
  };

  TensorReader() = default;
  Status ParseImage();

  /// Decodes a kQ8_0 entry's wire blocks into `q` (Resize + copy +
  /// scale validation). InvalidArgument on non-finite block scales.
  Status DecodeQ8(const std::string& name, const Entry& entry,
                  q8::QuantizedTensor* q) const;

  std::string bytes_;
  std::string model_tag_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::unordered_map<std::string, size_t> meta_index_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace hiergat

#endif  // HIERGAT_CORE_SERIALIZE_H_
