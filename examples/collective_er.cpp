// Collective entity resolution: resolve a query against its top-N
// TF-IDF candidates jointly with HierGAT+ (§2.1, Figure 2), and compare
// against judging the same candidates independently.

#include <cstdio>

#include "blocking/blocker.h"
#include "data/synthetic.h"
#include "er/hiergat.h"
#include "er/hiergat_plus.h"
#include "er/model.h"

using namespace hiergat;  // Example code; library code never does this.

int main() {
  // A multi-source camera corpus: each product is listed by several
  // shops with shop-specific formatting (the DI2KG setting).
  MultiSourceDataset raw = GenerateMultiSource("camera", 8, 150, 31);
  std::printf("multi-source corpus: %zu listings of ~150 products from %d "
              "sources\n",
              raw.entities.size(), raw.num_sources);

  // Blocking: every listing queries its top-6 most similar listings.
  CollectiveBuildOptions build;
  build.top_n = 6;
  const CollectiveDataset data = BuildCollectiveFromMultiSource(raw, build);
  std::printf("collective dataset: %zu/%zu/%zu train/valid/test queries, "
              "%d candidate pairs total\n",
              data.train.size(), data.valid.size(), data.test.size(),
              data.TotalCandidates());

  TrainOptions options;
  options.epochs = 8;

  // Joint decisions: HierGAT+ builds ONE graph per query holding the
  // query and all candidates, so candidates compete and shared filler
  // tokens are discounted (entity-level context + alignment).
  HierGatPlusConfig config;
  config.lm_size = LmSize::kSmall;
  config.lm_pretrain_steps = 1200;
  HierGatPlusModel hg_plus(config);
  hg_plus.Train(data, options);
  std::printf("\nHierGAT+ (joint):       %s\n",
              hg_plus.Evaluate(data.test).ToString().c_str());

  // Independent decisions: the pairwise model scores each candidate in
  // isolation (how Table 7 runs the pairwise baselines).
  HierGatConfig pairwise_config;
  pairwise_config.lm_size = LmSize::kSmall;
  pairwise_config.lm_pretrain_steps = 1200;
  HierGatModel pairwise(pairwise_config);
  PairwiseAsCollective adapter(&pairwise);
  adapter.Train(data, options);
  std::printf("HierGAT (independent):  %s\n",
              adapter.Evaluate(data.test).ToString().c_str());

  // Inspect one query's joint prediction.
  const CollectiveQuery& query = data.test.front();
  std::printf("\nquery: %s\n", query.query.Serialize().c_str());
  const std::vector<float> probs = hg_plus.PredictQuery(query);
  for (size_t c = 0; c < query.candidates.size(); ++c) {
    std::printf("  [%s] P=%.2f  %s\n", query.labels[c] ? "MATCH" : "  -  ",
                probs[c], query.candidates[c].Serialize().c_str());
  }
  return 0;
}
