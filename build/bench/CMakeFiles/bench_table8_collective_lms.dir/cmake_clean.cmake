file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_collective_lms.dir/bench_common.cc.o"
  "CMakeFiles/bench_table8_collective_lms.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_table8_collective_lms.dir/bench_table8_collective_lms.cc.o"
  "CMakeFiles/bench_table8_collective_lms.dir/bench_table8_collective_lms.cc.o.d"
  "bench_table8_collective_lms"
  "bench_table8_collective_lms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_collective_lms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
