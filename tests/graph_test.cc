#include "graph/hhg.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace hiergat {
namespace {

Entity MakeEntity(const std::string& title, const std::string& desc) {
  Entity e;
  e.Add("title", title);
  e.Add("desc", desc);
  return e;
}

TEST(HhgTest, FigureFourStructure) {
  // Mirrors Figure 4: distinct tokens merge; attribute keys do not.
  Entity e1 = MakeEntity("spark framework", "big data framework");
  Entity e2 = MakeEntity("adobe spark", "design framework");
  const Hhg hhg = Hhg::Build({e1, e2});

  EXPECT_EQ(hhg.num_entities(), 2);
  EXPECT_EQ(hhg.num_attributes(), 4);  // 2 per entity; "desc" repeats.
  // Unique tokens: spark framework big data adobe design = 6.
  EXPECT_EQ(hhg.num_tokens(), 6);

  // "framework" is a single node adjacent to 3 attributes.
  int framework = -1;
  for (int t = 0; t < hhg.num_tokens(); ++t) {
    if (hhg.token(t) == "framework") framework = t;
  }
  ASSERT_GE(framework, 0);
  EXPECT_EQ(hhg.token_to_attributes()[framework].size(), 3u);

  // Key groups: title and desc, each with two attribute nodes.
  ASSERT_EQ(hhg.key_groups().size(), 2u);
  for (const auto& [key, attrs] : hhg.key_groups()) {
    EXPECT_EQ(attrs.size(), 2u) << key;
  }
}

TEST(HhgTest, TokenOrderPreservedWithinAttribute) {
  Entity e = MakeEntity("alpha beta alpha", "x");
  const Hhg hhg = Hhg::Build({e});
  const auto& seq = hhg.attribute(0).token_seq;
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(hhg.token(seq[0]), "alpha");
  EXPECT_EQ(hhg.token(seq[1]), "beta");
  EXPECT_EQ(seq[0], seq[2]) << "repeated word maps to the same node";
}

TEST(HhgTest, CommonTokensRequireTwoEntities) {
  Entity e1 = MakeEntity("shared unique1", "a");
  Entity e2 = MakeEntity("shared unique2", "b");
  const Hhg hhg = Hhg::Build({e1, e2});
  const std::vector<int>& common = hhg.common_tokens();
  ASSERT_EQ(common.size(), 1u);
  EXPECT_EQ(hhg.token(common[0]), "shared");
}

TEST(HhgTest, TokenRepeatedWithinOneEntityIsNotCommon) {
  Entity e1 = MakeEntity("dup dup", "dup");
  Entity e2 = MakeEntity("other", "thing");
  const Hhg hhg = Hhg::Build({e1, e2});
  EXPECT_TRUE(hhg.common_tokens().empty());
}

TEST(HhgTest, CommonTokensForKeyGroupRespectsCap) {
  Entity e1 = MakeEntity("a b c d e f", "x");
  Entity e2 = MakeEntity("a b c d e f", "y");
  const Hhg hhg = Hhg::Build({e1, e2});
  // Group 0 is "title"; all 6 shared tokens are common.
  EXPECT_EQ(hhg.CommonTokensForKeyGroup(0, 10).size(), 6u);
  EXPECT_EQ(hhg.CommonTokensForKeyGroup(0, 3).size(), 3u);
  // Group 1 ("desc") has no common tokens.
  EXPECT_TRUE(hhg.CommonTokensForKeyGroup(1, 10).empty());
}

TEST(HhgTest, RelatedEntitiesViaCommonTokens) {
  Entity q = MakeEntity("acme widget", "base");
  Entity c1 = MakeEntity("acme gadget", "other");   // Shares "acme".
  Entity c2 = MakeEntity("unrelated thing", "foo"); // Shares nothing.
  const Hhg hhg = Hhg::Build({q, c1, c2});
  const std::vector<int> related = hhg.RelatedEntities(0);
  EXPECT_EQ(related, std::vector<int>{1});
  EXPECT_EQ(hhg.RelatedEntities(2), std::vector<int>{});
}

TEST(HhgTest, CollectiveGraphHoldsQueryPlusCandidates) {
  std::vector<Entity> entities;
  for (int i = 0; i < 5; ++i) {
    entities.push_back(
        MakeEntity("product " + std::to_string(i), "desc " + std::to_string(i)));
  }
  const Hhg hhg = Hhg::Build(entities);
  EXPECT_EQ(hhg.num_entities(), 5);
  // "product" and "desc" appear in all entities -> common.
  EXPECT_EQ(hhg.common_tokens().size(), 2u);
  for (int e = 0; e < 5; ++e) {
    EXPECT_EQ(hhg.entity(e).attributes.size(), 2u);
    EXPECT_EQ(hhg.RelatedEntities(e).size(), 4u);
  }
}

TEST(HhgTest, MissingValueStillTokenizes) {
  Entity e;
  e.Add("title", kMissingValue);
  const Hhg hhg = Hhg::Build({e});
  ASSERT_EQ(hhg.num_tokens(), 1);
  EXPECT_EQ(hhg.token(0), "nan");
}

}  // namespace
}  // namespace hiergat
