#include "text/tokenizer.h"

#include <cctype>

namespace hiergat {

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i) out.push_back(' ');
    out += tokens[i];
  }
  return out;
}

}  // namespace hiergat
