
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cc" "bench/CMakeFiles/bench_table1_datasets.dir/bench_common.cc.o" "gcc" "bench/CMakeFiles/bench_table1_datasets.dir/bench_common.cc.o.d"
  "/root/repo/bench/bench_table1_datasets.cc" "bench/CMakeFiles/bench_table1_datasets.dir/bench_table1_datasets.cc.o" "gcc" "bench/CMakeFiles/bench_table1_datasets.dir/bench_table1_datasets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/er/CMakeFiles/hiergat_er.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hiergat_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/blocking/CMakeFiles/hiergat_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hiergat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/hiergat_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hiergat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hiergat_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hiergat_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
