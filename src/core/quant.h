#ifndef HIERGAT_CORE_QUANT_H_
#define HIERGAT_CORE_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hiergat {
namespace q8 {

// Q8_0 block quantization (ggml-style): each run of 32 consecutive
// row elements stores one f32 scale plus 32 int8 quants, so a weight
// row costs 36 bytes per 32 floats instead of 128 — a 3.56x shrink in
// weight bytes-moved with full-precision activations. Rows quantize
// independently (a rank-2 [rows, cols] tensor has ceil(cols / 32)
// blocks per row; rank-1 is a single row), so a partial trailing block
// never straddles two rows.
//
// The codec here is the *scalar reference*: serialization and
// in-place checkpoint quantization always use it, keeping checkpoint
// bytes independent of which compute backend (tensor/backend.h) is
// active on the writing host.

constexpr int kBlockSize = 32;
/// On-disk bytes per block: 4-byte little-endian f32 scale + 32 int8.
constexpr size_t kWireBytes = 36;

struct Block {
  float scale;
  int8_t q[kBlockSize];
};

inline int BlocksPerRow(int cols) {
  return (cols + kBlockSize - 1) / kBlockSize;
}

/// Quantizes `cols` floats into blocks[0 .. BlocksPerRow(cols)).
/// scale = max|x| / 127 per block; q = round(x / scale) in [-127, 127].
/// An all-zero block stores scale 0 (DequantizeRow maps it back to 0).
void QuantizeRow(const float* x, int cols, Block* blocks);

/// Expands one quantized row back to `cols` floats: out[j] = scale * q.
void DequantizeRow(const Block* blocks, int cols, float* out);

/// Quantized weight storage attached to a parameter tensor. The blocks
/// — not the dequantized floats — are the source of truth: Save writes
/// the stored blocks verbatim and Load copies file blocks straight in,
/// so quantized checkpoints are byte-stable across save→load→save even
/// though quantize∘dequantize is not an identity.
class QuantizedTensor {
 public:
  bool active() const { return active_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int blocks_per_row() const { return BlocksPerRow(cols_); }
  size_t wire_bytes() const { return blocks_.size() * kWireBytes; }
  const std::vector<Block>& blocks() const { return blocks_; }
  std::vector<Block>& mutable_blocks() { return blocks_; }

  /// Sizes the block table for a [rows, cols] tensor and marks the
  /// storage active; contents are zeroed until filled.
  void Resize(int rows, int cols);

  /// Quantizes a dense row-major [rows, cols] buffer with the scalar
  /// reference codec and activates the storage.
  void QuantizeFrom(const float* x, int rows, int cols);

  /// Dequantizes every row into a dense row-major [rows, cols] buffer.
  void DequantizeTo(float* out) const;

  /// Drops the blocks and deactivates (e.g. after an f32 checkpoint
  /// load replaces a previously quantized weight).
  void Clear();

 private:
  int rows_ = 0;
  int cols_ = 0;
  bool active_ = false;
  std::vector<Block> blocks_;
};

}  // namespace q8
}  // namespace hiergat

#endif  // HIERGAT_CORE_QUANT_H_
