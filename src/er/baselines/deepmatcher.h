#ifndef HIERGAT_ER_BASELINES_DEEPMATCHER_H_
#define HIERGAT_ER_BASELINES_DEEPMATCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "er/trainer.h"
#include "nn/embedding.h"
#include "nn/gru.h"
#include "nn/mlp.h"
#include "text/vocab.h"

namespace hiergat {

/// Configuration for the DeepMatcher baseline.
struct DeepMatcherConfig {
  int embedding_dim = 32;  ///< FastText-style word vectors (hashed init).
  int hidden_dim = 24;     ///< GRU hidden width per direction.
  int classifier_hidden = 48;
  float dropout = 0.1f;
};

/// DeepMatcher (Mudgal et al. 2018): the RNN state of the art the paper
/// compares against. FastText word embeddings -> per-attribute BiGRU
/// summarization -> attribute comparison (|l-r|, l*r) -> Highway +
/// softmax classifier. Attribute structure is preserved (each attribute
/// is encoded separately), but there is no attention over tokens — the
/// weakness §1 illustrates.
class DeepMatcherModel : public NeuralPairwiseModel {
 public:
  explicit DeepMatcherModel(
      const DeepMatcherConfig& config = DeepMatcherConfig());
  ~DeepMatcherModel() override;

  std::string name() const override { return "DeepMatcher"; }
  void Train(const PairDataset& data, const TrainOptions& options) override;

 protected:
  Tensor ForwardLogits(const EntityPair& pair, bool training,
                       Rng& rng) const override;
  std::vector<Tensor> TrainableParameters() const override;

  /// BiGRU summary [1, 2H] of one attribute value.
  Tensor EncodeAttribute(const std::string& value, bool training,
                         Rng& rng) const;

  DeepMatcherConfig config_;
  std::unique_ptr<Vocabulary> vocab_;
  std::unique_ptr<Embedding> embeddings_;
  std::unique_ptr<BiGru> encoder_;
  std::unique_ptr<Highway> highway_;
  std::unique_ptr<Mlp> classifier_;
  int num_attributes_ = 0;
  bool built_ = false;

 private:
  /// `seed` comes from TrainOptions — the one seed for the whole run.
  void Build(const PairDataset& data, uint64_t seed);
};

/// DM+ (HierMatcher-style, Fu et al. 2020): DeepMatcher plus token-level
/// cross-entity alignment — every left token attends over the right
/// token states and is compared against its aligned vector, restoring
/// robustness to word-order and attribute heterogeneity.
class DmPlusModel : public DeepMatcherModel {
 public:
  explicit DmPlusModel(const DeepMatcherConfig& config = DeepMatcherConfig());

  std::string name() const override { return "DM+"; }

 protected:
  Tensor ForwardLogits(const EntityPair& pair, bool training,
                       Rng& rng) const override;

 private:
  /// Aligned comparison of one attribute pair -> [1, 4H].
  Tensor CompareAligned(const std::string& left, const std::string& right,
                        bool training, Rng& rng) const;
};

}  // namespace hiergat

#endif  // HIERGAT_ER_BASELINES_DEEPMATCHER_H_
