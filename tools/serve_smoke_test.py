#!/usr/bin/env python3
"""End-to-end smoke test for the hiergat_serve binary.

Usage: serve_smoke_test.py SERVER_BINARY CHECKPOINT

Starts the server on an ephemeral port with CHECKPOINT published as
model "smoke", probes the HTTP shim (/healthz, /readyz, /metrics),
sends SIGTERM, and asserts a clean graceful drain (exit code 0 with the
drain banner on stdout). Stdlib-only on purpose — this is the "does the
shipped binary actually serve" gate for the ci workflow preset, not a
protocol test (tests/serve_test.cc covers the wire format in-process).
"""

import re
import signal
import socket
import subprocess
import sys


def http_get(port, path):
    """One-shot HTTP/1.0-style GET; returns the raw response text."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: 127.0.0.1\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks).decode(errors="replace")


def fail(message, server=None):
    print(f"FAIL: {message}", file=sys.stderr)
    if server is not None:
        server.kill()
        out, _ = server.communicate(timeout=10)
        print("--- server output ---", file=sys.stderr)
        print(out, file=sys.stderr)
    return 1


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary, checkpoint = argv[1], argv[2]

    server = subprocess.Popen(
        [binary, "--port=0", f"--model=smoke={checkpoint}"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # The serving banner is printed (and flushed) once the listener
        # is bound; the ephemeral port is in it.
        port = None
        for line in server.stdout:
            match = re.search(r"serving on [\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            return fail("server exited before printing the serving banner",
                        server)

        readyz = http_get(port, "/readyz")
        if "200 OK" not in readyz or "ready" not in readyz:
            return fail(f"/readyz not ready:\n{readyz}", server)
        healthz = http_get(port, "/healthz")
        if "200 OK" not in healthz:
            return fail(f"/healthz unhealthy:\n{healthz}", server)
        metrics = http_get(port, "/metrics")
        if "hiergat_serve_connections" not in metrics:
            return fail(f"/metrics missing serve counters:\n{metrics[:500]}",
                        server)

        server.send_signal(signal.SIGTERM)
        out, _ = server.communicate(timeout=30)
        if server.returncode != 0:
            return fail(f"exit code {server.returncode} after SIGTERM:\n{out}")
        if "draining" not in out or "served" not in out:
            return fail(f"graceful-drain banner missing from:\n{out}")
    finally:
        if server.poll() is None:
            server.kill()

    print(f"OK: served on port {port}, drained cleanly on SIGTERM")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
