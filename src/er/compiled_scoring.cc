#include "er/compiled_scoring.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/logging.h"
#include "nn/introspection.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/threadpool.h"

namespace hiergat {

namespace {

obs::Counter& SummarizeReplays() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "hiergat.compiled.summarize_replays");
  return c;
}

obs::Counter& CompareReplays() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "hiergat.compiled.compare_replays");
  return c;
}

obs::Counter& CaptureFailures() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "hiergat.compiled.capture_failures");
  return c;
}

}  // namespace

CompiledScoring::CompiledScoring(const CompiledScoringConfig& config)
    : config_(config) {
  HG_CHECK(config_.lm != nullptr);
  HG_CHECK(config_.aggregator != nullptr);
  HG_CHECK(config_.comparator != nullptr);
  HG_CHECK(config_.classifier != nullptr);
  HG_CHECK_GT(config_.num_attributes, 0);
}

CompiledScoring::~CompiledScoring() = default;

std::shared_ptr<graph::CompiledGraph> CompiledScoring::BuildSummarizeGraph(
    int length) const {
  HG_TRACE_SPAN("CompiledScoring::BuildSummarizeGraph");
  // Capture must see exactly the inference-time trace: no gradients, no
  // attention snapshots (those Detach, which poisons the capture).
  NoGradGuard no_grad;
  AttentionRecordingGuard no_attention(false);
  Rng unused(0);  // Inference-mode Dropout never draws from it.
  graph::GraphCapture capture;
  Tensor input;
  if (length > 0) {
    input = Tensor::Zeros({length, config_.lm->dim()});
    capture.MarkInput(input);
  }
  Tensor summary =
      config_.aggregator->SummarizeEmbedded(input, /*training=*/false, unused);
  capture.MarkOutput(summary);
  auto compiled = capture.Finish();
  if (!compiled.ok()) {
    CaptureFailures().Increment();
    HG_LOG(WARN) << "summarize graph capture (length " << length
                    << ") failed, staying eager: "
                    << compiled.status().ToString();
    return nullptr;
  }
  return std::move(compiled).value();
}

std::shared_ptr<graph::CompiledGraph> CompiledScoring::BuildCompareGraph()
    const {
  HG_TRACE_SPAN("CompiledScoring::BuildCompareGraph");
  NoGradGuard no_grad;
  AttentionRecordingGuard no_attention(false);
  Rng unused(0);
  const int k = config_.num_attributes;
  const int f = config_.lm->dim();
  graph::GraphCapture capture;
  std::vector<Tensor> left(static_cast<size_t>(k));
  std::vector<Tensor> right(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    left[static_cast<size_t>(i)] = Tensor::Zeros({1, f});
    capture.MarkInput(left[static_cast<size_t>(i)]);
  }
  for (int i = 0; i < k; ++i) {
    right[static_cast<size_t>(i)] = Tensor::Zeros({1, f});
    capture.MarkInput(right[static_cast<size_t>(i)]);
  }
  Tensor left_entity, right_entity;
  if (config_.entity_inputs) {
    left_entity = Tensor::Zeros({1, k * f});
    capture.MarkInput(left_entity);
    right_entity = Tensor::Zeros({1, k * f});
    capture.MarkInput(right_entity);
  } else {
    left_entity = config_.aggregator->SummarizeEntity(left);
    right_entity = config_.aggregator->SummarizeEntity(right);
  }
  std::vector<Tensor> similarities;
  similarities.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    similarities.push_back(config_.comparator->CompareAttribute(
        left[static_cast<size_t>(i)], right[static_cast<size_t>(i)],
        /*training=*/false, unused));
  }
  Tensor similarity = config_.comparator->CombineViews(
      similarities, left_entity, right_entity);
  Tensor out = config_.classifier->Forward(similarity);
  if (config_.include_softmax) out = Softmax(out);
  capture.MarkOutput(out);
  auto compiled = capture.Finish();
  if (!compiled.ok()) {
    CaptureFailures().Increment();
    HG_LOG(WARN) << "compare graph capture failed, staying eager: "
                    << compiled.status().ToString();
    return nullptr;
  }
  return std::move(compiled).value();
}

std::shared_ptr<graph::CompiledGraph> CompiledScoring::SummarizeGraph(
    int length) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = summarize_.find(length);
  if (it != summarize_.end()) return it->second;
  if (summarize_failed_.count(length)) return nullptr;
  // Compile under the lock: concurrent scorers wanting this length wait
  // rather than duplicating the (one-off) capture work.
  auto built = BuildSummarizeGraph(length);
  if (built == nullptr) {
    summarize_failed_.insert(length);
    ++num_failed_;
    obs::RecordFlightEvent(obs::FlightEventKind::kGraphCaptureFail,
                           "summarize", length);
    return nullptr;
  }
  obs::RecordFlightEvent(obs::FlightEventKind::kGraphCompile, "summarize",
                         length,
                         static_cast<int64_t>(built->stats().est_flops));
  summarize_.emplace(length, built);
  return built;
}

std::shared_ptr<graph::CompiledGraph> CompiledScoring::CompareGraph() const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (compare_ != nullptr) return compare_;
  if (compare_failed_) return nullptr;
  auto built = BuildCompareGraph();
  if (built == nullptr) {
    compare_failed_ = true;
    ++num_failed_;
    obs::RecordFlightEvent(obs::FlightEventKind::kGraphCaptureFail,
                           "compare");
    return nullptr;
  }
  obs::RecordFlightEvent(obs::FlightEventKind::kGraphCompile, "compare", 0,
                         static_cast<int64_t>(built->stats().est_flops));
  compare_ = built;
  return built;
}

Tensor CompiledScoring::Summarize(const Tensor& wpc,
                                  const std::vector<int>& token_seq) const {
  const int length = static_cast<int>(token_seq.size());
  std::shared_ptr<graph::CompiledGraph> compiled = SummarizeGraph(length);
  if (compiled == nullptr) return Tensor();
  const int f = config_.lm->dim();
  Tensor out = Tensor::Zeros({1, f});
  float* outputs[] = {out.data().data()};
  if (length == 0) {
    // Fully folded: replay is a memcpy of the constant [CLS] summary.
    compiled->Run(nullptr, outputs, &ThreadPool::Global());
  } else {
    // Dense [L, F] gather of the WpC rows — the graph's only input.
    std::vector<float> gathered(static_cast<size_t>(length) *
                                static_cast<size_t>(f));
    const float* src = wpc.data().data();
    const int wpc_rows = wpc.dim(0);
    for (int i = 0; i < length; ++i) {
      const int row = token_seq[static_cast<size_t>(i)];
      HG_CHECK(row >= 0 && row < wpc_rows);
      std::memcpy(gathered.data() + static_cast<size_t>(i) * f,
                  src + static_cast<size_t>(row) * f,
                  static_cast<size_t>(f) * sizeof(float));
    }
    const float* inputs[] = {gathered.data()};
    compiled->Run(inputs, outputs, &ThreadPool::Global());
  }
  SummarizeReplays().Increment();
  return out;
}

Tensor CompiledScoring::Compare(const std::vector<Tensor>& left,
                                const std::vector<Tensor>& right,
                                const Tensor& left_entity,
                                const Tensor& right_entity) const {
  std::shared_ptr<graph::CompiledGraph> compiled = CompareGraph();
  if (compiled == nullptr) return Tensor();
  const size_t k = static_cast<size_t>(config_.num_attributes);
  HG_CHECK_EQ(left.size(), k);
  HG_CHECK_EQ(right.size(), k);
  std::vector<const float*> inputs;
  inputs.reserve(2 * k + 2);
  for (const Tensor& t : left) inputs.push_back(t.data().data());
  for (const Tensor& t : right) inputs.push_back(t.data().data());
  if (config_.entity_inputs) {
    HG_CHECK(left_entity.defined() && right_entity.defined());
    inputs.push_back(left_entity.data().data());
    inputs.push_back(right_entity.data().data());
  }
  HG_CHECK_EQ(static_cast<int>(inputs.size()), compiled->num_inputs());
  Tensor out = Tensor::Zeros({1, 2});
  float* outputs[] = {out.data().data()};
  compiled->Run(inputs.data(), outputs, &ThreadPool::Global());
  CompareReplays().Increment();
  return out;
}

Status CompiledScoring::Compile(const std::vector<int>& attribute_lengths) {
  Status first_error = Status::Ok();
  if (CompareGraph() == nullptr) {
    first_error = Status::Unimplemented(
        "compare graph capture failed (scoring stays eager)");
  }
  for (int length : attribute_lengths) {
    if (length < 0) continue;
    if (SummarizeGraph(length) == nullptr && first_error.ok()) {
      first_error = Status::Unimplemented(
          "summarize graph capture failed for length " +
          std::to_string(length));
    }
  }
  return first_error;
}

void CompiledScoring::Clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  const int64_t discarded = static_cast<int64_t>(summarize_.size()) +
                            (compare_ != nullptr ? 1 : 0);
  if (discarded > 0) {
    obs::RecordFlightEvent(obs::FlightEventKind::kGraphInvalidate,
                           "compiled_scoring", discarded);
  }
  summarize_.clear();
  summarize_failed_.clear();
  compare_.reset();
  compare_failed_ = false;
  num_failed_ = 0;
}

CompiledScoring::Stats CompiledScoring::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  Stats stats;
  stats.num_failed = num_failed_;
  for (const auto& [length, compiled] : summarize_) {
    ++stats.num_graphs;
    stats.plan_bytes += compiled->stats().plan_bytes;
    stats.eager_bytes += compiled->stats().eager_bytes;
  }
  if (compare_ != nullptr) {
    ++stats.num_graphs;
    stats.plan_bytes += compare_->stats().plan_bytes;
    stats.eager_bytes += compare_->stats().eager_bytes;
  }
  return stats;
}

}  // namespace hiergat
