#include "er/baselines/magellan.h"

#include "core/logging.h"
#include "er/baselines/similarity_features.h"
#include "er/metrics.h"

namespace hiergat {

void MagellanModel::Train(const PairDataset& data,
                          const TrainOptions& options) {
  HG_CHECK(!data.train.empty());
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  int limit = static_cast<int>(data.train.size());
  if (options.max_train_items > 0 && options.max_train_items < limit) {
    limit = options.max_train_items;
  }
  x.reserve(static_cast<size_t>(limit));
  for (int i = 0; i < limit; ++i) {
    x.push_back(PairFeatures(data.train[static_cast<size_t>(i)]));
    y.push_back(data.train[static_cast<size_t>(i)].label);
  }

  const uint64_t seed = options.seed;
  classifiers_.clear();
  classifiers_.push_back(std::make_unique<DecisionTree>(8, 2, seed));
  classifiers_.push_back(std::make_unique<RandomForest>(15, 8, seed + 1));
  classifiers_.push_back(std::make_unique<LinearModel>(
      LinearModel::Loss::kHinge, 0.1f, 60, 1e-4f, seed + 2));
  classifiers_.push_back(std::make_unique<LinearModel>(
      LinearModel::Loss::kSquared, 0.02f, 60, 1e-4f, seed + 3));
  classifiers_.push_back(std::make_unique<LinearModel>(
      LinearModel::Loss::kLogistic, 0.1f, 60, 1e-4f, seed + 4));

  // Featurize validation pairs once.
  std::vector<std::vector<float>> vx;
  std::vector<int> vy;
  for (const EntityPair& pair : data.valid) {
    vx.push_back(PairFeatures(pair));
    vy.push_back(pair.label);
  }

  float best_f1 = -1.0f;
  for (auto& classifier : classifiers_) {
    classifier->Fit(x, y);
    float f1;
    if (vx.empty()) {
      f1 = 0.0f;
    } else {
      std::vector<float> probs;
      probs.reserve(vx.size());
      for (const auto& row : vx) {
        probs.push_back(classifier->PredictProbability(row));
      }
      f1 = ComputeMetrics(probs, vy).f1;
    }
    if (f1 > best_f1) {
      best_f1 = f1;
      selected_ = classifier.get();
      selected_name_ = classifier->name();
    }
  }
  HG_CHECK(selected_ != nullptr);
}

float MagellanModel::ScorePair(const EntityPair& pair) const {
  HG_CHECK(selected_ != nullptr) << "Train before Predict";
  return selected_->PredictProbability(PairFeatures(pair));
}

}  // namespace hiergat
