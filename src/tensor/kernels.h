#ifndef HIERGAT_TENSOR_KERNELS_H_
#define HIERGAT_TENSOR_KERNELS_H_

#include <cstddef>

namespace hiergat {

class ThreadPool;  // tensor/threadpool.h

namespace kernels {

// Raw-pointer compute kernels shared by forward ops and backward
// closures (tensor/ops.cc). This layer separates *what* an op computes
// from *how* the bytes move: everything here is plain dense row-major
// float math with no Tensor, shape, or autograd dependency, written so
// the compiler's vectorizer gets contiguous fixed-width inner loops
// (register-blocked GEMM micro-tiles, unrolled reductions).
//
// Conventions:
//  - GEMM kernels *accumulate*: C += alpha * op(A) * op(B). Callers
//    zero C first when they want assignment (fresh tensor buffers and
//    EnsureGrad() buffers are already zero-filled).
//  - All matrices are dense row-major with no padding (leading
//    dimension == column count).
//  - `rows`/`cols`/`m`/`n`/`k` are int to match Tensor::dim().

// -- GEMM family ---------------------------------------------------------

/// C[m,n] += alpha * A[m,k] * B[k,n].
void GemmNN(int m, int n, int k, float alpha, const float* a, const float* b,
            float* c);

/// C[m,n] += alpha * A[m,k] * B[n,k]^T — the dA = dOut * B^T shape of
/// the MatMul backward pass (and the Q*K^T of attention scores).
void GemmNT(int m, int n, int k, float alpha, const float* a, const float* b,
            float* c);

/// C[m,n] += alpha * A[k,m]^T * B[k,n] — the dB = A^T * dOut shape of
/// the MatMul backward pass.
void GemmTN(int m, int n, int k, float alpha, const float* a, const float* b,
            float* c);

// -- Elementwise ---------------------------------------------------------

/// y[i] += alpha * x[i].
void Axpy(size_t n, float alpha, const float* x, float* y);
/// y[i] += x[i] (gradient accumulation; Axpy with alpha 1 without the
/// multiply).
void Accumulate(size_t n, const float* x, float* y);
/// out[i] = a[i] + b[i].
void AddInto(size_t n, const float* a, const float* b, float* out);
/// out[i] = a[i] - b[i].
void SubInto(size_t n, const float* a, const float* b, float* out);
/// out[i] = a[i] * b[i].
void MulInto(size_t n, const float* a, const float* b, float* out);
/// y[i] += x[i] * w[i] (Hadamard backward: dA += dOut ⊙ B).
void MulAccumulate(size_t n, const float* x, const float* w, float* y);
/// out[i] = s * x[i].
void ScaleInto(size_t n, float s, const float* x, float* out);

// -- Row-structured ------------------------------------------------------

/// inout[r,c] += bias[c] for every row (fused Linear bias).
void AddBiasRows(int rows, int cols, const float* bias, float* inout);
/// dst[c] += sum_r src[r,c] (bias gradient / SumRows backward shape).
void ColSumAccumulate(int rows, int cols, const float* src, float* dst);

/// Row-wise softmax of x[rows,cols] into y, max-subtracted for
/// stability. In-place (y == x) is allowed.
void SoftmaxRows(int rows, int cols, const float* x, float* y);

/// Row-wise softmax backward: gx[r,c] += (gy[r,c] - <gy_r, y_r>) *
/// y[r,c] where y is the forward output.
void SoftmaxBackwardRows(int rows, int cols, const float* y, const float* gy,
                         float* gx);

/// Row-wise layer norm: y = gamma * xhat + beta with
/// xhat = (x - mean_r) * inv_std_r. Writes the per-row inverse stddev
/// and normalized values needed by the backward pass into `inv_std`
/// [rows] and `xhat` [rows*cols].
void LayerNormRows(int rows, int cols, float eps, const float* x,
                   const float* gamma, const float* beta, float* y,
                   float* xhat, float* inv_std);

/// Layer-norm backward from cached xhat/inv_std. Any of gx / ggamma /
/// gbeta may be null to skip that input's gradient.
void LayerNormBackwardRows(int rows, int cols, const float* xhat,
                           const float* inv_std, const float* gamma,
                           const float* gy, float* gx, float* ggamma,
                           float* gbeta);

// -- Intra-op parallel wrappers ------------------------------------------
//
// Row-partitioned versions of the forward kernels above, dispatched
// over a persistent ThreadPool (tensor/threadpool.h). Each wrapper
// falls back to the serial kernel when `pool` is null, the pool has one
// lane, intra-op parallelism is banned on the calling thread, or the
// problem is below the parallel threshold — callers can use them
// unconditionally.
//
// Bit-identity: every kernel here accumulates each output element over
// k (or its row) in ascending order regardless of how rows are blocked,
// and ParallelFor's chunk boundaries depend only on the shape — so the
// parallel wrappers produce bit-identical results to the serial
// kernels at any thread count. GEMM row chunks are still aligned to the
// kMR micro-tile for locality.

/// C[m,n] += alpha * A[m,k] * B[k,n], rows of C partitioned.
void ParallelGemmNN(ThreadPool* pool, int m, int n, int k, float alpha,
                    const float* a, const float* b, float* c);

/// C[m,n] += alpha * A[m,k] * B[n,k]^T, rows of C partitioned.
void ParallelGemmNT(ThreadPool* pool, int m, int n, int k, float alpha,
                    const float* a, const float* b, float* c);

/// C[m,n] += alpha * A[k,m]^T * B[k,n]. Runs serial: the transposed-A
/// layout has leading dimension m, so a row block of C is a *strided*
/// column block of A that the dense kernel cannot address. TN only
/// appears on backward passes, which run under autograd rather than
/// the compiled replay path this family exists for.
void ParallelGemmTN(ThreadPool* pool, int m, int n, int k, float alpha,
                    const float* a, const float* b, float* c);

/// Row-wise softmax, rows partitioned. In-place (y == x) is allowed.
void ParallelSoftmaxRows(ThreadPool* pool, int rows, int cols, const float* x,
                         float* y);

/// Row-wise layer norm, rows partitioned; same outputs as LayerNormRows.
void ParallelLayerNormRows(ThreadPool* pool, int rows, int cols, float eps,
                           const float* x, const float* gamma,
                           const float* beta, float* y, float* xhat,
                           float* inv_std);

}  // namespace kernels
}  // namespace hiergat

#endif  // HIERGAT_TENSOR_KERNELS_H_
