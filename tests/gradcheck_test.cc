// Property-based verification of every differentiable op against
// central finite differences (the library's correctness backbone).

#include "tensor/gradcheck.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace hiergat {
namespace {

Tensor RandomInput(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(shape, rng, 0.8f, /*requires_grad=*/true);
}

void ExpectGradOk(
    const std::function<Tensor(const std::vector<Tensor>&)>& forward,
    std::vector<Tensor> inputs, float tolerance = 2e-2f) {
  GradCheckResult result =
      CheckGradients(forward, inputs, 1e-2f, tolerance);
  EXPECT_TRUE(result.passed)
      << "max_rel_error=" << result.max_rel_error
      << " worst_input=" << result.worst_input
      << " worst_element=" << result.worst_element;
}

TEST(GradCheck, Add) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Add(in[0], in[1])); },
      {RandomInput({3, 4}, 1), RandomInput({3, 4}, 2)});
}

TEST(GradCheck, AddBiasBroadcast) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(Add(in[0], in[1])); },
      {RandomInput({3, 4}, 3), RandomInput({4}, 4)});
}

TEST(GradCheck, MulAndScale) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Scale(Mul(in[0], in[1]), 1.7f));
      },
      {RandomInput({2, 3}, 5), RandomInput({2, 3}, 6)});
}

TEST(GradCheck, MatMul) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(MatMul(in[0], in[1]));
      },
      {RandomInput({3, 4}, 7), RandomInput({4, 2}, 8)});
}

TEST(GradCheck, MatMulChainWithTranspose) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(MatMul(in[0], Transpose(in[1])));
      },
      {RandomInput({2, 3}, 9), RandomInput({4, 3}, 10)});
}

TEST(GradCheck, ConcatRowsAndCols) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor rows = ConcatRows({in[0], in[1]});
        Tensor cols = ConcatCols({rows, in[2]});
        return Sum(Mul(cols, cols));
      },
      {RandomInput({2, 3}, 11), RandomInput({1, 3}, 12),
       RandomInput({3, 2}, 13)});
}

TEST(GradCheck, SliceRowsAndCols) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor a = SliceRows(in[0], 1, 3);
        Tensor b = SliceCols(a, 0, 2);
        return Sum(Mul(b, b));
      },
      {RandomInput({4, 3}, 14)});
}

TEST(GradCheck, GatherRows) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor g = GatherRows(in[0], {0, 2, 2, 1});
        return Sum(Mul(g, g));
      },
      {RandomInput({3, 3}, 15)});
}

TEST(GradCheck, Softmax) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor s = Softmax(in[0]);
        // Non-uniform downstream weights exercise the full Jacobian.
        Tensor w = Tensor::FromVector({2, 3}, {1, -2, 3, 0.5, 2, -1});
        return Sum(Mul(s, w));
      },
      {RandomInput({2, 3}, 16)});
}

TEST(GradCheck, Activations) {
  for (uint64_t seed : {17u, 18u}) {
    ExpectGradOk(
        [](const std::vector<Tensor>& in) {
          Tensor h = Tanh(in[0]);
          h = Add(h, Sigmoid(in[0]));
          h = Add(h, LeakyRelu(in[0], 0.2f));
          h = Add(h, Gelu(in[0]));
          return Sum(Mul(h, h));
        },
        {RandomInput({3, 3}, seed)});
  }
}

TEST(GradCheck, ExpLog) {
  // Keep inputs positive for Log.
  Rng rng(19);
  Tensor x = Tensor::Uniform({2, 3}, rng, 0.5f, 2.0f, true);
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Sum(Add(Log(in[0]), Exp(Scale(in[0], 0.3f))));
      },
      {x});
}

TEST(GradCheck, Reductions) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor m = MeanRows(in[0]);
        Tensor s = SumRows(in[0]);
        return Add(Mean(in[0]), Sum(Mul(m, s)));
      },
      {RandomInput({3, 4}, 20)});
}

TEST(GradCheck, LayerNorm) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor y = LayerNorm(in[0], in[1], in[2]);
        Tensor w = Tensor::FromVector({2, 4},
                                      {1, -1, 2, 0.5, -2, 1, 0.3, 1});
        return Sum(Mul(y, w));
      },
      {RandomInput({2, 4}, 21), RandomInput({4}, 22), RandomInput({4}, 23)},
      /*tolerance=*/5e-2f);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return SoftmaxCrossEntropy(in[0], {1, 0, 1});
      },
      {RandomInput({3, 2}, 24)});
}

TEST(GradCheck, AttentionComposite) {
  // A miniature scaled-dot-product attention: the composite exercises
  // MatMul + Softmax + Transpose in the exact pattern the models use.
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor scores = Scale(MatMul(in[0], Transpose(in[1])), 0.5f);
        Tensor attn = Softmax(scores);
        Tensor out = MatMul(attn, in[2]);
        return Sum(Mul(out, out));
      },
      {RandomInput({3, 4}, 25), RandomInput({3, 4}, 26),
       RandomInput({3, 4}, 27)},
      /*tolerance=*/5e-2f);
}

// Parameterized sweep: Sum of elementwise composite over many shapes.
class GradCheckShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GradCheckShapes, CompositeElementwise) {
  const Shape shape = GetParam();
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        Tensor h = Mul(Tanh(in[0]), Sigmoid(in[0]));
        return Sum(Mul(h, h));
      },
      {RandomInput(shape, 31 + static_cast<uint64_t>(shape[0]))});
}

INSTANTIATE_TEST_SUITE_P(Shapes, GradCheckShapes,
                         ::testing::Values(Shape{1, 1}, Shape{1, 7},
                                           Shape{5, 1}, Shape{4, 4},
                                           Shape{2, 9}, Shape{8, 3}));

}  // namespace
}  // namespace hiergat
