#ifndef HIERGAT_ER_CHECKPOINT_META_H_
#define HIERGAT_ER_CHECKPOINT_META_H_

#include "core/serialize.h"
#include "er/comparison.h"
#include "er/contextual.h"
#include "text/mini_lm.h"

namespace hiergat {

/// Checkpoint-metadata encoding shared by the HierGAT model family:
/// every config field travels as a string key/value next to the weights,
/// so Load can reconstruct the exact module geometry before reading
/// tensors. Enum fields are validated on read (a checkpoint written by
/// a future config version fails loudly instead of mis-casting).

void WriteContextualMeta(TensorWriter* writer, const ContextualConfig& config);
Status ReadContextualMeta(const TensorReader& reader,
                          ContextualConfig* config);

Status ReadLmSizeMeta(const TensorReader& reader, LmSize* size);
Status ReadViewCombinationMeta(const TensorReader& reader,
                               ViewCombination* combination);

}  // namespace hiergat

#endif  // HIERGAT_ER_CHECKPOINT_META_H_
