// Table 5 — sizes of the collective-ER benchmarks built from the raw
// two-table Magellan data with TF-IDF top-16 blocking (§6.3).

#include <cstdio>

#include "bench_common.h"
#include "blocking/blocker.h"
#include "data/synthetic.h"

namespace hiergat {
namespace {

struct PaperRow {
  const char* name;
  int table_a, table_b, candidates;
};

constexpr PaperRow kPaper[] = {
    {"iTunes-Amazon", 6907, 55959, 2295},
    {"DBLP-ACM", 2616, 2294, 37740},
    {"Amazon-Google", 1363, 3226, 19737},
    {"Walmart-Amazon", 2554, 22074, 16354},
    {"Abt-Buy", 1081, 1092, 17476},
};

void Run() {
  bench::PrintHeader(
      "Table 5 — collective Magellan benchmark sizes",
      "two raw tables per dataset; TF-IDF cosine top-N blocking (N=16)");
  const double scale = 0.04 * bench::Scale();
  const int top_n = bench::IntEnv("HIERGAT_BENCH_TOPN", 16);
  bench::Table table("Table 5 (paper | ours at scale " +
                         bench::Fmt(scale, 3) + ")",
                     {"Dataset", "A(paper)", "B(paper)", "Cand(paper)",
                      "A(ours)", "B(ours)", "Cand(ours)"});
  for (size_t i = 0; i < std::size(kPaper); ++i) {
    const PaperRow& p = kPaper[i];
    SyntheticSpec spec;
    spec.name = p.name;
    spec.num_attributes = 4;
    spec.seed = 900 + i;
    const int a = std::max(30, static_cast<int>(p.table_a * scale));
    const int b = std::max(a * 2, static_cast<int>(p.table_b * scale));
    const TwoTableDataset raw = GenerateTwoTable(spec, a, b);
    CollectiveBuildOptions options;
    options.top_n = top_n;
    const CollectiveDataset data = BuildCollective(raw, options);
    table.AddRow({p.name, std::to_string(p.table_a),
                  std::to_string(p.table_b), std::to_string(p.candidates),
                  std::to_string(raw.table_a.size()),
                  std::to_string(raw.table_b.size()),
                  std::to_string(data.TotalCandidates())});
  }
  table.Print();
  std::printf(
      "\nShape check: candidates = #queries x N, as in the paper's top-16\n"
      "blocking protocol; queries are split 3:1:1 *before* blocking so test\n"
      "queries are unseen (§6.3).\n");
}

}  // namespace
}  // namespace hiergat

int main() {
  hiergat::Run();
  return 0;
}
