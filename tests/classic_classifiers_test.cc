#include "er/baselines/classic_classifiers.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace hiergat {
namespace {

/// Linearly separable blobs: class 1 around (1,1), class 0 around (-1,-1).
void MakeBlobs(int n, std::vector<std::vector<float>>* x,
               std::vector<int>* y, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const int label = i % 2;
    const float cx = label == 1 ? 1.0f : -1.0f;
    x->push_back({cx + rng.NextGaussian() * 0.3f,
                  cx + rng.NextGaussian() * 0.3f});
    y->push_back(label);
  }
}

/// XOR-ish data only trees can fit: label = (x0 > 0) != (x1 > 0).
void MakeXor(int n, std::vector<std::vector<float>>* x, std::vector<int>* y,
             uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const float a = rng.NextFloat(-1, 1);
    const float b = rng.NextFloat(-1, 1);
    x->push_back({a, b});
    y->push_back((a > 0) != (b > 0) ? 1 : 0);
  }
}

float Accuracy(const ClassicClassifier& model,
               const std::vector<std::vector<float>>& x,
               const std::vector<int>& y) {
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const int predicted = model.PredictProbability(x[i]) >= 0.5f ? 1 : 0;
    correct += predicted == y[i] ? 1 : 0;
  }
  return static_cast<float>(correct) / static_cast<float>(x.size());
}

class LinearSeparableTest
    : public ::testing::TestWithParam<LinearModel::Loss> {};

TEST_P(LinearSeparableTest, FitsBlobs) {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  MakeBlobs(200, &x, &y, 7);
  LinearModel model(GetParam(), 0.1f, 80, 1e-4f, 3);
  model.Fit(x, y);
  EXPECT_GT(Accuracy(model, x, y), 0.95f) << model.name();
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LinearSeparableTest,
                         ::testing::Values(LinearModel::Loss::kLogistic,
                                           LinearModel::Loss::kHinge,
                                           LinearModel::Loss::kSquared));

TEST(DecisionTreeTest, FitsBlobs) {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  MakeBlobs(200, &x, &y, 11);
  DecisionTree tree(6, 2, 1);
  tree.Fit(x, y);
  EXPECT_GT(Accuracy(tree, x, y), 0.95f);
}

TEST(DecisionTreeTest, FitsXorWhereLinearFails) {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  MakeXor(400, &x, &y, 13);
  DecisionTree tree(6, 2, 1);
  tree.Fit(x, y);
  EXPECT_GT(Accuracy(tree, x, y), 0.9f);
  LinearModel logistic(LinearModel::Loss::kLogistic, 0.1f, 80, 1e-4f, 5);
  logistic.Fit(x, y);
  EXPECT_LT(Accuracy(logistic, x, y), 0.75f)
      << "XOR is not linearly separable";
}

TEST(DecisionTreeTest, DepthLimitControlsComplexity) {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  MakeXor(400, &x, &y, 17);
  DecisionTree stump(1, 2, 1);
  stump.Fit(x, y);
  DecisionTree deep(8, 2, 1);
  deep.Fit(x, y);
  EXPECT_GT(Accuracy(deep, x, y), Accuracy(stump, x, y));
}

TEST(RandomForestTest, FitsXorAndSmoothsProbabilities) {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  MakeXor(400, &x, &y, 19);
  RandomForest forest(12, 8, 23);
  forest.Fit(x, y);
  EXPECT_GT(Accuracy(forest, x, y), 0.85f);
  // Probabilities are ensemble averages, not only 0/1.
  bool non_extreme = false;
  for (size_t i = 0; i < 30; ++i) {
    const float p = forest.PredictProbability(x[i]);
    if (p > 0.05f && p < 0.95f) non_extreme = true;
  }
  EXPECT_TRUE(non_extreme);
}

TEST(ClassifierNamesTest, AllDistinct) {
  DecisionTree t;
  RandomForest f;
  LinearModel svm(LinearModel::Loss::kHinge);
  LinearModel lr(LinearModel::Loss::kLogistic);
  LinearModel sq(LinearModel::Loss::kSquared);
  std::set<std::string> names = {t.name(), f.name(), svm.name(), lr.name(),
                                 sq.name()};
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace hiergat
