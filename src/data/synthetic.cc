#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/logging.h"
#include "core/rng.h"

namespace hiergat {

namespace {

// ---------------------------------------------------------------------
// Word machinery
// ---------------------------------------------------------------------

const char* const kConsonants[] = {"b", "d", "f", "g", "k", "l", "m",
                                   "n", "p", "r", "s", "t", "v", "z"};
const char* const kVowels[] = {"a", "e", "i", "o", "u"};

/// Pronounceable synthetic word ("zorate", "melvino") for brands/lines.
std::string MakeWord(Rng& rng, int syllables) {
  std::string word;
  for (int s = 0; s < syllables; ++s) {
    word += kConsonants[rng.NextUint64(std::size(kConsonants))];
    word += kVowels[rng.NextUint64(std::size(kVowels))];
  }
  return word;
}

/// Discriminative model code, e.g. "mx3420".
std::string MakeModelCode(Rng& rng) {
  std::string code;
  code += static_cast<char>('a' + rng.NextUint64(26));
  code += static_cast<char>('a' + rng.NextUint64(26));
  for (int i = 0; i < 4; ++i) {
    code += static_cast<char>('0' + rng.NextUint64(10));
  }
  return code;
}

const char* const kFillers[] = {
    "the",  "and",   "with",  "for",    "new",    "series", "pro",
    "plus", "high",  "great", "best",   "design", "use",    "all",
    "top",  "fully", "from",  "deluxe", "value",  "pack",   "set",
    "easy", "home",  "tech",  "smart"};

const char* const kDescriptorsFixed[] = {
    "wireless", "portable", "digital",   "compact", "premium",
    "advanced", "classic",  "automatic", "slim",    "heavy",
    "duty",     "rapid",    "quiet",     "bright",  "sturdy"};

std::vector<std::string> CategoriesFor(const std::string& domain) {
  if (domain == "citation") return {"database", "systems", "theory", "ml"};
  if (domain == "music") return {"rock", "jazz", "pop", "classical"};
  if (domain == "restaurant") return {"italian", "asian", "grill", "cafe"};
  if (domain == "company") return {"finance", "retail", "software", "media"};
  return {"electronics", "sports", "food", "office"};
}

std::string ApplyTypo(std::string word, Rng& rng) {
  if (word.size() < 4) return word;
  const size_t i = 1 + rng.NextUint64(word.size() - 2);
  if (rng.NextBool(0.5f)) {
    std::swap(word[i], word[i - 1]);  // transposition
  } else {
    word.erase(i, 1);  // deletion
  }
  return word;
}

// ---------------------------------------------------------------------
// Catalog: true entities grouped into families
// ---------------------------------------------------------------------

struct TrueEntity {
  int id = 0;
  int family = 0;
  std::string brand;
  std::string line;
  std::string model;  // The discriminative token.
  std::string category;
  std::vector<std::string> descriptors;  // Shared within the family.
  std::vector<std::string> desc_words;   // Description body.
  int price = 0;
  int year = 0;
};

struct Catalog {
  std::vector<TrueEntity> entities;
  std::vector<std::vector<int>> families;  // Entity ids per family.
  /// Bidirectional synonym map over descriptor/filler vocabulary: two
  /// sources may use different surface forms for the same concept.
  /// Token-overlap methods cannot bridge synonyms; embedding methods
  /// learn to (the semantic gap of §1).
  std::unordered_map<std::string, std::string> synonyms;
};

Catalog MakeCatalog(const std::string& domain, int num_families,
                    int min_per_family, int max_per_family, int desc_len,
                    Rng& rng) {
  Catalog catalog;
  const std::vector<std::string> categories = CategoriesFor(domain);
  // Polysemous descriptors: shared across categories so that their
  // evidential meaning depends on the surrounding context (§1 "Giant").
  std::vector<std::string> polysemous;
  for (int i = 0; i < 8; ++i) polysemous.push_back(MakeWord(rng, 2));
  // Synonym surface forms for about half of the fixed descriptor and
  // filler vocabulary.
  auto add_synonym = [&](const std::string& word) {
    if (!rng.NextBool(0.5f)) return;
    const std::string alt = MakeWord(rng, 3);
    catalog.synonyms[word] = alt;
    catalog.synonyms[alt] = word;
  };
  for (const char* word : kFillers) add_synonym(word);
  for (const char* word : kDescriptorsFixed) add_synonym(word);

  int next_id = 0;
  for (int f = 0; f < num_families; ++f) {
    const std::string brand = MakeWord(rng, 2 + rng.NextUint64(2));
    const std::string line = MakeWord(rng, 2);
    const std::string category =
        categories[rng.NextUint64(categories.size())];
    std::vector<std::string> descriptors;
    for (int d = 0; d < 3; ++d) {
      if (rng.NextBool(0.25f)) {
        descriptors.push_back(polysemous[rng.NextUint64(polysemous.size())]);
      } else {
        descriptors.push_back(
            kDescriptorsFixed[rng.NextUint64(std::size(kDescriptorsFixed))]);
      }
    }
    // Family-level shared description body (the redundant-context pool).
    std::vector<std::string> shared_desc;
    const int shared_len = std::max(3, desc_len - 3);
    for (int w = 0; w < shared_len; ++w) {
      if (rng.NextBool(0.6f)) {
        shared_desc.push_back(kFillers[rng.NextUint64(std::size(kFillers))]);
      } else {
        shared_desc.push_back(MakeWord(rng, 2));
        add_synonym(shared_desc.back());
      }
    }
    // Family-level price/year bands: sibling products cost about the
    // same, so price must NOT separate hard negatives from positives.
    const int family_price = static_cast<int>(rng.NextInt(10, 2000));
    const int family_year = static_cast<int>(rng.NextInt(2006, 2020));
    const int members =
        static_cast<int>(rng.NextInt(min_per_family, max_per_family));
    std::vector<int> member_ids;
    for (int m = 0; m < members; ++m) {
      TrueEntity e;
      e.id = next_id++;
      e.family = f;
      e.brand = brand;
      e.line = line;
      e.model = MakeModelCode(rng);
      e.category = category;
      e.descriptors = descriptors;
      e.desc_words = shared_desc;
      // A few entity-unique description words.
      for (int w = 0; w < 3; ++w) e.desc_words.push_back(MakeWord(rng, 2));
      e.price = family_price +
                static_cast<int>(rng.NextInt(0, std::max(1, family_price / 20)));
      e.year = family_year + static_cast<int>(rng.NextInt(-1, 1));
      member_ids.push_back(e.id);
      catalog.entities.push_back(std::move(e));
    }
    catalog.families.push_back(std::move(member_ids));
  }
  return catalog;
}

// ---------------------------------------------------------------------
// Rendering: true entity -> noisy source view
// ---------------------------------------------------------------------

std::vector<std::string> SchemaFor(int num_attributes,
                                   const std::string& domain) {
  std::vector<std::string> schema;
  if (num_attributes == 1) return {"content"};
  if (domain == "citation") {
    schema = {"title", "authors", "venue", "year", "pages", "publisher",
              "volume", "number"};
  } else if (domain == "music") {
    schema = {"title", "artist", "album", "genre", "price", "released",
              "time", "copyright"};
  } else {
    schema = {"title", "brand", "description", "price", "category", "year",
              "code", "extra"};
  }
  schema.resize(static_cast<size_t>(
      std::min<int>(num_attributes, static_cast<int>(schema.size()))));
  return schema;
}

std::string MaybeTypo(const std::string& word, float noise, Rng& rng) {
  return rng.NextBool(noise) ? ApplyTypo(word, rng) : word;
}

/// Renders the noisy view of `e` seen from one source. `style` controls
/// systematic per-source formatting (token order, abbreviations);
/// `noise` controls stochastic per-view corruption (drops, typos,
/// synonym substitution, reordering).
Entity Render(const TrueEntity& e, const Catalog& catalog,
              const std::vector<std::string>& schema, int style, float noise,
              Rng& rng) {
  const bool reorder = (style % 2) == 1;
  const bool abbreviate = (style % 3) == 1 || rng.NextBool(0.15f);
  const std::string brand_shown =
      abbreviate && e.brand.size() > 4 ? e.brand.substr(0, 4) : e.brand;
  // Each source places the discriminative model code where it likes:
  // title or free-text description. Slot-aligned matchers (DeepMatcher
  // compares attribute k against attribute k) lose this evidence when
  // the two views disagree; serialized (Ditto) and graph-based
  // (HierGAT: one token node regardless of attribute) matchers keep it.
  const bool has_description =
      std::find(schema.begin(), schema.end(), "description") !=
          schema.end() ||
      std::find(schema.begin(), schema.end(), "album") != schema.end() ||
      schema.front() == "content";
  const bool model_in_title = !has_description || rng.NextBool(0.5f);
  // Source-specific wording: swap a token for its synonym.
  auto reword = [&](const std::string& token) {
    auto it = catalog.synonyms.find(token);
    if (it != catalog.synonyms.end() && rng.NextBool(noise * 2.0f)) {
      return it->second;
    }
    return token;
  };

  // Title: brand line model descriptor(s), order per style.
  std::vector<std::string> title_tokens;
  if (reorder) {
    title_tokens = {e.line, e.descriptors[0], brand_shown};
  } else {
    title_tokens = {brand_shown, e.line, e.descriptors[0]};
  }
  if (model_in_title) {
    title_tokens.insert(title_tokens.begin() + (reorder ? 1 : 2), e.model);
  }
  if (rng.NextBool(0.5f)) title_tokens.push_back(e.descriptors[1]);
  std::string title;
  for (const std::string& t : title_tokens) {
    if (rng.NextBool(noise)) continue;  // token drop
    if (!title.empty()) title += " ";
    title += MaybeTypo(reword(t), noise, rng);
  }
  if (title.empty()) title = e.model;

  // Description: family-shared body + descriptors (+ model if it was
  // dropped from the title or at random).
  std::vector<std::string> desc_tokens = e.desc_words;
  desc_tokens.push_back(e.descriptors[1]);
  desc_tokens.push_back(e.descriptors[2]);
  if (!model_in_title || rng.NextBool(0.4f)) desc_tokens.push_back(e.model);
  // Light shuffle: random adjacent swaps proportional to noise.
  const int swaps =
      static_cast<int>(noise * 10.0f * static_cast<float>(desc_tokens.size()));
  for (int s = 0; s < swaps; ++s) {
    const size_t i = rng.NextUint64(desc_tokens.size() - 1);
    std::swap(desc_tokens[i], desc_tokens[i + 1]);
  }
  std::string description;
  for (const std::string& t : desc_tokens) {
    if (rng.NextBool(noise * 0.8f)) continue;
    if (!description.empty()) description += " ";
    description += MaybeTypo(reword(t), noise * 0.6f, rng);
  }

  // Listed prices drift up to ~8% between sources, so price similarity
  // does not distinguish positives from same-family hard negatives.
  const int price_jitter = std::max(1, e.price * 8 / 100);
  const int price_shown =
      e.price + static_cast<int>(rng.NextInt(-price_jitter, price_jitter));

  Entity out;
  for (const std::string& key : schema) {
    std::string value;
    if (key == "content") {
      value = title + " " + description + " " + e.category + " " +
              std::to_string(price_shown);
    } else if (key == "title") {
      value = title;
    } else if (key == "brand" || key == "artist" || key == "authors") {
      value = brand_shown + (key == "authors" ? " " + e.line : "");
    } else if (key == "description" || key == "album" || key == "pages") {
      value = description;
    } else if (key == "price") {
      value = std::to_string(price_shown);
    } else if (key == "category" || key == "genre" || key == "venue") {
      value = e.category;
    } else if (key == "year" || key == "released") {
      value = std::to_string(e.year);
    } else if (key == "code" || key == "volume") {
      // Family-level features, NOT the raw model code: exposing the
      // discriminative token as its own clean column would let a single
      // string-equality feature solve the task (§1's point is that the
      // discriminative evidence is buried inside text).
      value = e.descriptors[0] + " " + e.line;
    } else {
      value = e.descriptors[2] + " " + e.line;
    }
    if (value.empty() || rng.NextBool(noise * 0.2f)) value = kMissingValue;
    out.Add(key, std::move(value));
  }
  return out;
}

/// DeepMatcher-style dirty corruption: move a random attribute's value
/// into another attribute, leaving NAN behind (§6.1).
void CorruptEntity(Entity* entity, Rng& rng) {
  const int n = entity->num_attributes();
  if (n < 2) return;
  for (int i = 0; i < n; ++i) {
    if (!rng.NextBool(0.3f)) continue;
    auto& [key, value] = entity->attribute(i);
    if (value == kMissingValue) continue;
    int j = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n)));
    if (j == i) j = (i + 1) % n;
    auto& [tkey, tvalue] = entity->attribute(j);
    if (tvalue == kMissingValue) {
      tvalue = value;
    } else {
      tvalue += " " + value;
    }
    value = kMissingValue;
  }
}

/// Draws a labeled pair from the catalog.
EntityPair MakePair(const Catalog& catalog,
                    const std::vector<std::string>& schema,
                    const SyntheticSpec& spec, bool positive, Rng& rng) {
  EntityPair pair;
  if (positive) {
    const TrueEntity& e =
        catalog.entities[rng.NextUint64(catalog.entities.size())];
    pair.left = Render(e, catalog, schema, /*style=*/0, spec.noise, rng);
    pair.right = Render(e, catalog, schema, /*style=*/1, spec.noise, rng);
    pair.label = 1;
    return pair;
  }
  pair.label = 0;
  if (rng.NextBool(spec.hardness)) {
    // Hard negative: two siblings of one family.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::vector<int>& family =
          catalog.families[rng.NextUint64(catalog.families.size())];
      if (family.size() < 2) continue;
      const size_t i = rng.NextUint64(family.size());
      size_t j = rng.NextUint64(family.size());
      if (j == i) j = (j + 1) % family.size();
      pair.left = Render(catalog.entities[static_cast<size_t>(family[i])],
                         catalog, schema, 0, spec.noise, rng);
      pair.right = Render(catalog.entities[static_cast<size_t>(family[j])],
                          catalog, schema, 1, spec.noise, rng);
      return pair;
    }
  }
  // Easy negative: two unrelated entities.
  const size_t i = rng.NextUint64(catalog.entities.size());
  size_t j = rng.NextUint64(catalog.entities.size());
  if (catalog.entities[j].family == catalog.entities[i].family) {
    j = (j + catalog.families.back().size() + 1) % catalog.entities.size();
  }
  pair.left = Render(catalog.entities[i], catalog, schema, 0, spec.noise, rng);
  pair.right = Render(catalog.entities[j], catalog, schema, 1, spec.noise, rng);
  return pair;
}

void SplitPairs(std::vector<EntityPair> pairs, PairDataset* out, Rng& rng) {
  // Fisher-Yates shuffle, then 3:1:1.
  for (size_t i = pairs.size(); i > 1; --i) {
    std::swap(pairs[i - 1], pairs[rng.NextUint64(i)]);
  }
  const size_t n = pairs.size();
  const size_t train_end = n * 3 / 5;
  const size_t valid_end = n * 4 / 5;
  out->train.assign(pairs.begin(), pairs.begin() + train_end);
  out->valid.assign(pairs.begin() + train_end, pairs.begin() + valid_end);
  out->test.assign(pairs.begin() + valid_end, pairs.end());
}

}  // namespace

PairDataset GeneratePairDataset(const SyntheticSpec& spec) {
  HG_CHECK_GT(spec.num_pairs, 0);
  Rng rng(spec.seed);
  // Enough families that positives rarely collide, few enough that
  // hard negatives are plentiful.
  const int num_families = std::max(4, spec.num_pairs / 8);
  Catalog catalog =
      MakeCatalog(spec.domain, num_families, 2, 4, spec.desc_len, rng);
  const std::vector<std::string> schema =
      SchemaFor(spec.num_attributes, spec.domain);

  const int num_pos = std::max(
      1, static_cast<int>(std::lround(spec.num_pairs * spec.positive_ratio)));
  std::vector<EntityPair> pairs;
  pairs.reserve(static_cast<size_t>(spec.num_pairs));
  for (int i = 0; i < num_pos; ++i) {
    pairs.push_back(MakePair(catalog, schema, spec, /*positive=*/true, rng));
  }
  for (int i = num_pos; i < spec.num_pairs; ++i) {
    pairs.push_back(MakePair(catalog, schema, spec, /*positive=*/false, rng));
  }
  if (spec.dirty) {
    for (EntityPair& pair : pairs) {
      CorruptEntity(&pair.left, rng);
      CorruptEntity(&pair.right, rng);
    }
  }
  PairDataset dataset;
  dataset.name = spec.name;
  dataset.domain = spec.domain;
  SplitPairs(std::move(pairs), &dataset, rng);
  return dataset;
}

PairDataset MakeDirty(const PairDataset& clean, uint64_t seed) {
  Rng rng(seed);
  PairDataset dirty = clean;
  dirty.name = "Dirty-" + clean.name;
  for (auto* split : {&dirty.train, &dirty.valid, &dirty.test}) {
    for (EntityPair& pair : *split) {
      CorruptEntity(&pair.left, rng);
      CorruptEntity(&pair.right, rng);
    }
  }
  return dirty;
}

namespace {

SyntheticSpec Spec(const std::string& name, const std::string& domain,
                   int pairs, float pos, int attrs, float hardness,
                   float noise, int desc_len, uint64_t seed) {
  SyntheticSpec s;
  s.name = name;
  s.domain = domain;
  s.num_pairs = pairs;
  s.positive_ratio = pos;
  s.num_attributes = attrs;
  s.hardness = hardness;
  s.noise = noise;
  s.desc_len = desc_len;
  s.seed = seed;
  return s;
}

int Scaled(int paper_size, double scale) {
  return std::max(60, static_cast<int>(paper_size * scale));
}

}  // namespace

std::vector<SyntheticSpec> MagellanSpecs(double scale) {
  // Sizes/#attrs/positive ratios mirror Table 1; hardness and noise are
  // tuned so relative difficulty tracks the paper's F1 landscape
  // (Fodors-Zagats and DBLP-ACM nearly clean, Amazon-Google hardest).
  return {
      Spec("Beer", "product", Scaled(450, scale), 0.151f, 4, 0.75f, 0.10f,
           10, 11),
      Spec("iTunes-Amazon", "music", Scaled(539, scale), 0.245f, 8, 0.70f,
           0.09f, 12, 12),
      Spec("Fodors-Zagats", "restaurant", Scaled(946, scale), 0.116f, 6,
           0.30f, 0.03f, 10, 13),
      Spec("DBLP-ACM", "citation", Scaled(12363, scale), 0.180f, 4, 0.40f,
           0.03f, 12, 14),
      Spec("DBLP-Scholar", "citation", Scaled(28707, scale), 0.186f, 4,
           0.50f, 0.06f, 12, 15),
      Spec("Amazon-Google", "product", Scaled(11460, scale), 0.102f, 3,
           0.90f, 0.13f, 14, 16),
      Spec("Walmart-Amazon", "product", Scaled(10242, scale), 0.094f, 5,
           0.80f, 0.10f, 14, 17),
      Spec("Abt-Buy", "product", Scaled(9575, scale), 0.107f, 3, 0.80f,
           0.10f, 18, 18),
      Spec("Company", "company", Scaled(112632, scale), 0.250f, 1, 0.70f,
           0.08f, 30, 19),
  };
}

std::vector<SyntheticSpec> DirtyMagellanSpecs(double scale) {
  std::vector<SyntheticSpec> dirty;
  for (const SyntheticSpec& spec : MagellanSpecs(scale)) {
    if (spec.name == "iTunes-Amazon" || spec.name == "DBLP-ACM" ||
        spec.name == "DBLP-Scholar" || spec.name == "Walmart-Amazon") {
      SyntheticSpec d = spec;
      d.name = "Dirty-" + spec.name;
      d.dirty = true;
      dirty.push_back(d);
    }
  }
  return dirty;
}

std::vector<EntityPair> WdcDataset::TrainSlice(const std::string& tier) const {
  int size = xlarge;
  if (tier == "small") size = small;
  else if (tier == "medium") size = medium;
  else if (tier == "large") size = large;
  return std::vector<EntityPair>(
      train_pool.begin(),
      train_pool.begin() + std::min<size_t>(train_pool.size(),
                                            static_cast<size_t>(size)));
}

WdcDataset GenerateWdc(const std::string& domain, int xlarge_size,
                       int test_size, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "wdc-" + domain;
  spec.domain = "product";
  spec.num_attributes = 1;  // WDC aligns only the title attribute.
  spec.positive_ratio = 300.0f / 1100.0f;
  spec.hardness = 0.85f;  // WDC negatives are selected for high text sim.
  spec.noise = 0.10f;
  spec.desc_len = 8;
  spec.seed = seed;

  Rng rng(seed);
  Catalog catalog = MakeCatalog(spec.domain, std::max(8, xlarge_size / 8), 2,
                                4, spec.desc_len, rng);
  const std::vector<std::string> schema = {"title"};
  auto draw = [&](int count, std::vector<EntityPair>* out) {
    const int pos = static_cast<int>(std::lround(count * spec.positive_ratio));
    for (int i = 0; i < count; ++i) {
      out->push_back(MakePair(catalog, schema, spec, i < pos, rng));
    }
    for (size_t i = out->size(); i > 1; --i) {
      std::swap((*out)[i - 1], (*out)[rng.NextUint64(i)]);
    }
  };
  WdcDataset wdc;
  wdc.domain = domain;
  draw(xlarge_size, &wdc.train_pool);
  draw(test_size, &wdc.test);
  wdc.xlarge = xlarge_size;
  wdc.large = std::max(1, xlarge_size / 2);
  wdc.medium = std::max(1, xlarge_size / 8);
  wdc.small = std::max(1, xlarge_size / 24);
  return wdc;
}

WdcDataset PoolWdc(const std::vector<WdcDataset>& domains) {
  WdcDataset all;
  all.domain = "all";
  for (const WdcDataset& d : domains) {
    all.train_pool.insert(all.train_pool.end(), d.train_pool.begin(),
                          d.train_pool.end());
    all.test.insert(all.test.end(), d.test.begin(), d.test.end());
    all.small += d.small;
    all.medium += d.medium;
    all.large += d.large;
    all.xlarge += d.xlarge;
  }
  // Interleave domains within the pool so every prefix is multi-domain.
  Rng rng(97);
  for (size_t i = all.train_pool.size(); i > 1; --i) {
    std::swap(all.train_pool[i - 1], all.train_pool[rng.NextUint64(i)]);
  }
  return all;
}

TwoTableDataset GenerateTwoTable(const SyntheticSpec& spec, int table_a_size,
                                 int table_b_size) {
  HG_CHECK_LE(table_a_size, table_b_size);
  Rng rng(spec.seed);
  // Guarantee at least table_b_size catalog entities: families have at
  // least 2 members, so table_b_size / 2 + 2 families always suffice.
  const int num_families = std::max(4, table_b_size / 2 + 2);
  Catalog catalog =
      MakeCatalog(spec.domain, num_families, 2, 4, spec.desc_len, rng);
  HG_CHECK_GE(static_cast<int>(catalog.entities.size()), table_b_size);
  const std::vector<std::string> schema =
      SchemaFor(spec.num_attributes, spec.domain);

  TwoTableDataset out;
  out.name = spec.name;
  // Table B: one view of the first table_b_size catalog entities.
  for (int i = 0; i < table_b_size; ++i) {
    out.table_b.push_back(Render(catalog.entities[static_cast<size_t>(i)],
                                 catalog, schema, /*style=*/1, spec.noise,
                                 rng));
  }
  // Table A: queries over a random subset of those entities, so every
  // query has exactly one gold match in B and its siblings as hard
  // distractors.
  std::vector<int> candidates(static_cast<size_t>(table_b_size));
  for (int i = 0; i < table_b_size; ++i) candidates[static_cast<size_t>(i)] = i;
  for (size_t i = candidates.size(); i > 1; --i) {
    std::swap(candidates[i - 1], candidates[rng.NextUint64(i)]);
  }
  for (int i = 0; i < table_a_size; ++i) {
    const int entity_id = candidates[static_cast<size_t>(i)];
    out.table_a.push_back(
        Render(catalog.entities[static_cast<size_t>(entity_id)], catalog,
               schema, /*style=*/0, spec.noise, rng));
    out.matches.emplace_back(i, entity_id);
  }
  return out;
}

MultiSourceDataset GenerateMultiSource(const std::string& name,
                                       int num_sources, int num_products,
                                       uint64_t seed) {
  Rng rng(seed);
  Catalog catalog =
      MakeCatalog("product", std::max(4, num_products / 3 + 1), 2, 4, 12, rng);
  MultiSourceDataset out;
  out.name = name;
  out.num_sources = num_sources;
  const std::vector<std::string> schema = SchemaFor(4, "product");
  int cluster = 0;
  for (const TrueEntity& e : catalog.entities) {
    if (cluster >= num_products) break;
    // Every product is listed by 2-4 distinct sources.
    const int listings = static_cast<int>(rng.NextInt(2, 4));
    int source = static_cast<int>(rng.NextUint64(
        static_cast<uint64_t>(num_sources)));
    for (int l = 0; l < listings; ++l) {
      out.entities.push_back(
          Render(e, catalog, schema, /*style=*/source, 0.08f, rng));
      out.cluster_ids.push_back(cluster);
      out.source_ids.push_back(source);
      source = (source + 1 +
                static_cast<int>(rng.NextUint64(
                    static_cast<uint64_t>(num_sources - 1)))) %
               num_sources;
    }
    ++cluster;
  }
  return out;
}

}  // namespace hiergat
