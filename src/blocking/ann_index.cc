#include "blocking/ann_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <queue>
#include <shared_mutex>
#include <unordered_map>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "core/logging.h"
#include "core/rng.h"
#include "core/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hiergat {

namespace {

constexpr int kMaxLevel = 30;
constexpr int kMaxDim = 4096;
constexpr int kMaxShards = 4096;
/// Slots (and ids after the hi/lo split) must stay exactly
/// representable in the f32 checkpoint tensors.
constexpr int64_t kMaxExactF32 = int64_t{1} << 24;
constexpr int64_t kMaxId = int64_t{1} << 47;

obs::Counter& InsertCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("hiergat.blocking.ann.inserts");
  return counter;
}
obs::Counter& SearchCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "hiergat.blocking.ann.searches");
  return counter;
}
obs::Counter& DistEvalCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "hiergat.blocking.ann.dist_evals");
  return counter;
}
obs::Gauge& SizeGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("hiergat.blocking.ann.size");
  return gauge;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Four-accumulator dot product: deterministic (fixed association) and
/// wide enough for the compiler to vectorize. Vectors are normalized on
/// insert, so this is the cosine.
float DotScalar(const float* a, const float* b, int dim) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int i = 0;
  for (; i + 4 <= dim; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HIERGAT_ANN_DOT_DISPATCH 1
/// AVX2+FMA dot, selected at load time like the tensor backend registry
/// (backend.cc). Association differs from the scalar path, so results
/// are deterministic per host, not across hosts — the property tests
/// only ever compare runs from the same process, and no golden index
/// image is committed.
__attribute__((target("avx2,fma"))) float DotAvx2(const float* a,
                                                  const float* b, int dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  acc0 = _mm256_add_ps(acc0, acc1);
  __m128 quad = _mm_add_ps(_mm256_castps256_ps128(acc0),
                           _mm256_extractf128_ps(acc0, 1));
  quad = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
  quad = _mm_add_ss(quad, _mm_shuffle_ps(quad, quad, 1));
  float out = _mm_cvtss_f32(quad);
  for (; i < dim; ++i) out += a[i] * b[i];
  return out;
}
#endif

using DotFn = float (*)(const float*, const float*, int);
DotFn PickDot() {
#if defined(HIERGAT_ANN_DOT_DISPATCH)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return DotAvx2;
  }
#endif
  return DotScalar;
}
const DotFn kDot = PickDot();

inline float Dot(const float* a, const float* b, int dim) {
  return kDot(a, b, dim);
}

/// int8 dot for the graph-walk hot path. Navigation vectors are
/// symmetric-quantized to int8 (q = round(127 * v) on the normalized
/// vector), shrinking a dim-128 vector from eight cache lines to two —
/// the walk is DRAM-latency bound, so that is a direct speedup. Integer
/// sums are exact, so the scalar and AVX2 paths agree bit-for-bit (the
/// accumulator never leaves int32: |sum| <= 127*127*4096 < 2^31).
int32_t DotQScalar(const int8_t* a, const int8_t* b, int dim) {
  int32_t s = 0;
  for (int i = 0; i < dim; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
}

#if defined(HIERGAT_ANN_DOT_DISPATCH)
__attribute__((target("avx2"))) int32_t DotQAvx2(const int8_t* a,
                                                 const int8_t* b, int dim) {
  __m256i acc = _mm256_setzero_si256();
  int i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i alo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
    const __m256i ahi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
    const __m256i blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
    const __m256i bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(alo, blo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(ahi, bhi));
  }
  __m128i quad = _mm_add_epi32(_mm256_castsi256_si128(acc),
                               _mm256_extracti128_si256(acc, 1));
  quad = _mm_add_epi32(quad, _mm_srli_si128(quad, 8));
  quad = _mm_add_epi32(quad, _mm_srli_si128(quad, 4));
  int32_t out = _mm_cvtsi128_si32(quad);
  for (; i < dim; ++i) {
    out += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return out;
}
#endif

using DotQFn = int32_t (*)(const int8_t*, const int8_t*, int);
DotQFn PickDotQ() {
#if defined(HIERGAT_ANN_DOT_DISPATCH)
  if (__builtin_cpu_supports("avx2")) return DotQAvx2;
#endif
  return DotQScalar;
}
const DotQFn kDotQ = PickDotQ();

inline int32_t DotQ(const int8_t* a, const int8_t* b, int dim) {
  return kDotQ(a, b, dim);
}

/// q = round(127 * v); |v_i| <= 1 after L2 normalization, so the result
/// fits int8 exactly. Deterministic (lround ties away from zero).
void Quantize(const float* v, int dim, int8_t* out) {
  for (int i = 0; i < dim; ++i) {
    out[i] = static_cast<int8_t>(std::lround(v[i] * 127.0f));
  }
}

void Prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 1);
#else
  (void)p;
#endif
}

/// (similarity, slot) with the deterministic ordering used everywhere:
/// higher similarity is better, ties break toward the smaller slot.
struct Scored {
  float sim;
  int32_t slot;
};
bool Better(const Scored& a, const Scored& b) {
  return a.sim > b.sim || (a.sim == b.sim && a.slot < b.slot);
}
/// Max-heap on "better" (top = best).
struct WorseCmp {
  bool operator()(const Scored& a, const Scored& b) const {
    return Better(b, a);
  }
};
/// Min-heap on "better" (top = worst) for bounded result sets.
struct BetterCmp {
  bool operator()(const Scored& a, const Scored& b) const {
    return Better(a, b);
  }
};

/// Per-thread visited marks, epoch-reset so repeated searches don't pay
/// a clear. Thread-local, so concurrent readers never share state.
struct VisitBuffer {
  std::vector<uint32_t> marks;
  uint32_t epoch = 0;

  void Begin(size_t n) {
    if (marks.size() < n) marks.resize(n, 0);
    if (++epoch == 0) {
      std::fill(marks.begin(), marks.end(), 0u);
      epoch = 1;
    }
  }
  bool Visit(int32_t slot) {
    if (marks[static_cast<size_t>(slot)] == epoch) return false;
    marks[static_cast<size_t>(slot)] = epoch;
    return true;
  }
};
VisitBuffer& LocalVisits() {
  thread_local VisitBuffer buffer;
  return buffer;
}

}  // namespace

/// One independent HNSW graph. Layer-0 links live in a flat fixed-stride
/// array (the hot path at a million records); the sparse upper layers of
/// high-level nodes live in a side map. All reads take `mutex` shared,
/// Insert takes it exclusive, so queries may overlap an insert stream.
struct AnnIndex::Shard {
  explicit Shard(const AnnIndexOptions& options, int index)
      : opts(options),
        l0_cap(2 * options.max_neighbors),
        ml(1.0 / std::log(static_cast<double>(
                     std::max(2, options.max_neighbors)))),
        rng(options.seed ^ SplitMix64(static_cast<uint64_t>(index))) {}

  /// By value, not reference: shards outlive moves of the owning
  /// AnnIndex (Parse returns through StatusOr), so they must not point
  /// back into it.
  const AnnIndexOptions opts;
  const int l0_cap;
  const double ml;
  Rng rng;

  std::vector<float> vectors;        ///< slot-major, L2-normalized.
  /// int8 navigation copy of `vectors` (see DotQ): the beam walks this,
  /// the float vectors only back the final rerank and serialization.
  std::vector<int8_t> qvectors;
  std::vector<int64_t> ids;          ///< slot -> external id.
  std::vector<int32_t> levels;       ///< slot -> top layer of the slot.
  std::vector<int32_t> links0;       ///< slot * l0_cap, -1 padded.
  std::vector<int32_t> links0_size;  ///< live prefix of each links0 row.
  /// slot -> link lists for layers 1..level (only slots with level >= 1).
  std::unordered_map<int32_t, std::vector<std::vector<int32_t>>> upper;
  int32_t entry = -1;
  int32_t max_level = -1;
  mutable std::shared_mutex mutex;

  int32_t count() const { return static_cast<int32_t>(ids.size()); }

  const float* Vec(int32_t slot) const {
    return vectors.data() + static_cast<size_t>(slot) * opts.dim;
  }

  const int8_t* QVec(int32_t slot) const {
    return qvectors.data() + static_cast<size_t>(slot) * opts.dim;
  }

  /// Rebuilds the int8 navigation copy from `vectors` (Parse path). The
  /// slot count comes from `vectors` itself, NOT count(): Parse calls
  /// this before `ids` is populated, when count() is still zero.
  void RequantizeAll() {
    qvectors.resize(vectors.size());
    const int32_t n =
        static_cast<int32_t>(vectors.size() / static_cast<size_t>(opts.dim));
    for (int32_t slot = 0; slot < n; ++slot) {
      Quantize(Vec(slot), opts.dim,
               qvectors.data() + static_cast<size_t>(slot) * opts.dim);
    }
  }

  int LayerCap(int layer) const {
    return layer == 0 ? l0_cap : opts.max_neighbors;
  }

  /// Link list of `slot` at `layer` as (pointer, size). Layer-0 reads
  /// the flat array, upper layers the side map.
  std::pair<const int32_t*, int> Links(int32_t slot, int layer) const {
    if (layer == 0) {
      return {links0.data() + static_cast<size_t>(slot) * l0_cap,
              links0_size[static_cast<size_t>(slot)]};
    }
    const auto it = upper.find(slot);
    if (it == upper.end() ||
        static_cast<size_t>(layer) > it->second.size()) {
      return {nullptr, 0};
    }
    const std::vector<int32_t>& list = it->second[static_cast<size_t>(layer - 1)];
    return {list.data(), static_cast<int>(list.size())};
  }

  void AppendLink(int32_t slot, int32_t neighbor, int layer) {
    if (layer == 0) {
      int32_t& size = links0_size[static_cast<size_t>(slot)];
      HG_CHECK_LT(size, l0_cap);
      links0[static_cast<size_t>(slot) * l0_cap + size] = neighbor;
      ++size;
      return;
    }
    upper[slot][static_cast<size_t>(layer - 1)].push_back(neighbor);
  }

  void RemoveLink(int32_t slot, int32_t neighbor, int layer) {
    if (layer == 0) {
      int32_t* row = links0.data() + static_cast<size_t>(slot) * l0_cap;
      int32_t& size = links0_size[static_cast<size_t>(slot)];
      for (int i = 0; i < size; ++i) {
        if (row[i] == neighbor) {
          row[i] = row[size - 1];
          row[size - 1] = -1;
          --size;
          return;
        }
      }
      return;
    }
    auto it = upper.find(slot);
    if (it == upper.end()) return;
    std::vector<int32_t>& list = it->second[static_cast<size_t>(layer - 1)];
    const auto pos = std::find(list.begin(), list.end(), neighbor);
    if (pos != list.end()) list.erase(pos);
  }

  void ReplaceLinks(int32_t slot, int layer,
                    const std::vector<Scored>& kept) {
    if (layer == 0) {
      int32_t* row = links0.data() + static_cast<size_t>(slot) * l0_cap;
      std::fill(row, row + l0_cap, -1);
      for (size_t i = 0; i < kept.size(); ++i) row[i] = kept[i].slot;
      links0_size[static_cast<size_t>(slot)] =
          static_cast<int32_t>(kept.size());
      return;
    }
    std::vector<int32_t>& list = upper[slot][static_cast<size_t>(layer - 1)];
    list.clear();
    for (const Scored& k : kept) list.push_back(k.slot);
  }

  int Degree(int32_t slot, int layer) const { return Links(slot, layer).second; }

  /// One level draw per insert (exactly one rng call, so a reloaded
  /// shard can replay the draw stream to stay insert-deterministic).
  int DrawLevel() {
    const float u = rng.NextFloat();
    const int level =
        static_cast<int>(-std::log(1.0 - static_cast<double>(u)) * ml);
    return std::min(level, kMaxLevel);
  }

  /// Greedy hill-climb toward `query` at `layer` (ef = 1 descent).
  int32_t GreedyStep(const int8_t* query, int32_t start, int layer,
                     int64_t* dist_evals) const {
    int32_t cur = start;
    float cur_sim = static_cast<float>(DotQ(query, QVec(cur), opts.dim));
    ++*dist_evals;
    bool improved = true;
    while (improved) {
      improved = false;
      const auto [list, size] = Links(cur, layer);
      for (int i = 0; i < size; ++i) Prefetch(QVec(list[i]));
      for (int i = 0; i < size; ++i) {
        const int32_t nb = list[i];
        const float sim = static_cast<float>(DotQ(query, QVec(nb), opts.dim));
        ++*dist_evals;
        if (sim > cur_sim || (sim == cur_sim && nb < cur)) {
          cur = nb;
          cur_sim = sim;
          improved = true;
        }
      }
    }
    return cur;
  }

  /// Beam search at one layer: best-first expansion keeping the ef best
  /// visited nodes. Returns them sorted best-first.
  std::vector<Scored> SearchLayer(const int8_t* query, int32_t start, int ef,
                                  int layer, int64_t* dist_evals) const {
    VisitBuffer& visits = LocalVisits();
    visits.Begin(static_cast<size_t>(count()));
    std::priority_queue<Scored, std::vector<Scored>, WorseCmp> candidates;
    std::priority_queue<Scored, std::vector<Scored>, BetterCmp> results;
    const Scored first{
        static_cast<float>(DotQ(query, QVec(start), opts.dim)), start};
    ++*dist_evals;
    visits.Visit(start);
    candidates.push(first);
    results.push(first);
    while (!candidates.empty()) {
      const Scored cur = candidates.top();
      if (static_cast<int>(results.size()) >= ef &&
          Better(results.top(), cur)) {
        break;
      }
      candidates.pop();
      const auto [list, size] = Links(cur.slot, layer);
      for (int i = 0; i < size; ++i) {
        if (visits.marks[static_cast<size_t>(list[i])] != visits.epoch) {
          Prefetch(QVec(list[i]));
        }
      }
      for (int i = 0; i < size; ++i) {
        const int32_t nb = list[i];
        if (!visits.Visit(nb)) continue;
        const float sim = static_cast<float>(DotQ(query, QVec(nb), opts.dim));
        ++*dist_evals;
        const Scored hit{sim, nb};
        if (static_cast<int>(results.size()) < ef ||
            Better(hit, results.top())) {
          candidates.push(hit);
          results.push(hit);
          if (static_cast<int>(results.size()) > ef) results.pop();
        }
      }
    }
    std::vector<Scored> sorted(results.size());
    for (size_t i = sorted.size(); i > 0; --i) {
      sorted[i - 1] = results.top();
      results.pop();
    }
    return sorted;
  }

  /// Malkov's diversity heuristic over best-first `candidates`: keep a
  /// candidate only if it is closer to the query than to every already
  /// kept neighbor. With `backfill`, skipped candidates top the list
  /// back up to `m` in order (both call sites backfill today — measured
  /// gold recall at 10^5 records is a hair better with it, and
  /// Connect's shrink path requires it so exactly one survivor drops).
  std::vector<Scored> SelectNeighbors(const std::vector<Scored>& candidates,
                                      int m, bool backfill,
                                      int64_t* dist_evals) const {
    std::vector<Scored> kept, skipped;
    for (const Scored& c : candidates) {
      if (static_cast<int>(kept.size()) >= m) break;
      bool diverse = true;
      for (const Scored& k : kept) {
        const float to_kept =
            static_cast<float>(DotQ(QVec(c.slot), QVec(k.slot), opts.dim));
        ++*dist_evals;
        if (to_kept > c.sim) {
          diverse = false;
          break;
        }
      }
      if (diverse) {
        kept.push_back(c);
      } else {
        skipped.push_back(c);
      }
    }
    if (backfill) {
      for (const Scored& c : skipped) {
        if (static_cast<int>(kept.size()) >= m) break;
        kept.push_back(c);
      }
    }
    return kept;
  }

  /// Makes `a` (the node being inserted) and `b` mutual neighbors at
  /// `layer`, shrinking b's full list with the diversity heuristic.
  /// Exactly one node drops out of a full list; if dropping it would
  /// sever its last link at this layer, a different (still-connected)
  /// victim is chosen instead — possibly `a` itself, in which case no
  /// edge forms at all. Symmetry is preserved in every branch.
  void Connect(int32_t a, int32_t b, float sim_ab, int layer,
               int64_t* dist_evals) {
    const int cap = LayerCap(layer);
    const auto [blist, bsize] = Links(b, layer);
    if (bsize < cap) {
      AppendLink(b, a, layer);
      AppendLink(a, b, layer);
      return;
    }
    std::vector<Scored> candidates;
    candidates.reserve(static_cast<size_t>(bsize) + 1);
    for (int i = 0; i < bsize; ++i) {
      candidates.push_back(Scored{
          static_cast<float>(DotQ(QVec(b), QVec(blist[i]), opts.dim)),
          blist[i]});
      ++*dist_evals;
    }
    candidates.push_back(Scored{sim_ab, a});
    std::sort(candidates.begin(), candidates.end(), Better);
    std::vector<Scored> kept =
        SelectNeighbors(candidates, cap, /*backfill=*/true, dist_evals);
    // Find the single dropped candidate.
    std::vector<char> is_kept(candidates.size(), 0);
    for (const Scored& k : kept) {
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].slot == k.slot) is_kept[i] = 1;
      }
    }
    size_t dropped_at = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!is_kept[i]) dropped_at = i;
    }
    HG_CHECK_LT(dropped_at, candidates.size());
    Scored dropped = candidates[dropped_at];
    if (dropped.slot != a && Degree(dropped.slot, layer) <= 1) {
      // Re-victimize: the worst kept node that keeps its connectivity
      // (`a` always qualifies — dropping it just skips the new edge).
      for (size_t i = kept.size(); i > 0; --i) {
        const Scored victim = kept[i - 1];
        if (victim.slot == a || Degree(victim.slot, layer) > 1) {
          kept[i - 1] = dropped;
          dropped = victim;
          std::sort(kept.begin(), kept.end(), Better);
          break;
        }
      }
    }
    if (dropped.slot == a) return;  // No edge in either direction.
    ReplaceLinks(b, layer, kept);
    RemoveLink(dropped.slot, b, layer);
    AppendLink(a, b, layer);
  }

  void Insert(int64_t id, const std::vector<float>& vector) {
    std::unique_lock<std::shared_mutex> lock(mutex);
    const int32_t slot = count();
    HG_CHECK_LT(slot, kMaxExactF32);
    vectors.insert(vectors.end(), vector.begin(), vector.end());
    float* stored = vectors.data() + static_cast<size_t>(slot) * opts.dim;
    float norm = 0.0f;
    for (int i = 0; i < opts.dim; ++i) norm += stored[i] * stored[i];
    if (norm > 0.0f) {
      const float inv = 1.0f / std::sqrt(norm);
      for (int i = 0; i < opts.dim; ++i) stored[i] *= inv;
    }
    qvectors.resize(qvectors.size() + static_cast<size_t>(opts.dim));
    Quantize(stored, opts.dim,
             qvectors.data() + static_cast<size_t>(slot) * opts.dim);
    ids.push_back(id);
    const int level = DrawLevel();
    levels.push_back(level);
    links0.insert(links0.end(), static_cast<size_t>(l0_cap), -1);
    links0_size.push_back(0);
    if (level >= 1) {
      upper.emplace(slot,
                    std::vector<std::vector<int32_t>>(
                        static_cast<size_t>(level)));
    }
    if (entry < 0) {
      entry = slot;
      max_level = level;
      return;
    }
    int64_t dist_evals = 0;
    const int8_t* query = QVec(slot);
    int32_t cur = entry;
    for (int layer = max_level; layer > level; --layer) {
      cur = GreedyStep(query, cur, layer, &dist_evals);
    }
    for (int layer = std::min(level, max_level); layer >= 0; --layer) {
      std::vector<Scored> found =
          SearchLayer(query, cur, opts.ef_construction, layer, &dist_evals);
      cur = found.front().slot;
      const std::vector<Scored> neighbors =
          SelectNeighbors(found, opts.max_neighbors, /*backfill=*/true,
                          &dist_evals);
      for (const Scored& nb : neighbors) {
        Connect(slot, nb.slot, nb.sim, layer, &dist_evals);
      }
    }
    if (level > max_level) {
      max_level = level;
      entry = slot;
    }
    DistEvalCounter().Increment(dist_evals);
  }

  /// Top-n (similarity, slot) hits for `query`, best first. The walk
  /// runs on the int8 copies; the whole ef-wide result pool is then
  /// reranked with exact float dots, so quantization error only costs
  /// recall when the true neighbor fell outside the beam entirely.
  std::vector<Scored> Search(const float* query, int n,
                             int64_t* dist_evals) const {
    if (count() == 0 || n <= 0) return {};
    std::vector<float> unit(query, query + opts.dim);
    float norm = 0.0f;
    for (const float v : unit) norm += v * v;
    if (norm > 0.0f) {
      const float inv = 1.0f / std::sqrt(norm);
      for (float& v : unit) v *= inv;
    }
    std::vector<int8_t> q(static_cast<size_t>(opts.dim));
    Quantize(unit.data(), opts.dim, q.data());
    int32_t cur = entry;
    for (int layer = max_level; layer >= 1; --layer) {
      cur = GreedyStep(q.data(), cur, layer, dist_evals);
    }
    std::vector<Scored> found = SearchLayer(
        q.data(), cur, std::max(opts.ef_search, n), 0, dist_evals);
    for (Scored& f : found) {
      f.sim = Dot(query, Vec(f.slot), opts.dim);
      ++*dist_evals;
    }
    std::sort(found.begin(), found.end(), Better);
    if (static_cast<int>(found.size()) > n) {
      found.resize(static_cast<size_t>(n));
    }
    return found;
  }
};

AnnIndex::AnnIndex(const AnnIndexOptions& options) : options_(options) {
  const Status valid = ValidateOptions(options_);
  HG_CHECK(valid.ok()) << valid.ToString();
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_, i));
  }
}

AnnIndex::~AnnIndex() = default;
AnnIndex::AnnIndex(AnnIndex&&) noexcept = default;
AnnIndex& AnnIndex::operator=(AnnIndex&&) noexcept = default;

Status AnnIndex::ValidateOptions(const AnnIndexOptions& options) {
  if (options.dim < 1 || options.dim > kMaxDim) {
    return Status::InvalidArgument("ann: dim out of range");
  }
  if (options.num_shards < 1 || options.num_shards > kMaxShards) {
    return Status::InvalidArgument("ann: num_shards out of range");
  }
  if (options.max_neighbors < 2 || options.max_neighbors > 256) {
    return Status::InvalidArgument("ann: max_neighbors out of range");
  }
  if (options.ef_construction < 1 || options.ef_search < 1) {
    return Status::InvalidArgument("ann: ef out of range");
  }
  return Status::Ok();
}

AnnIndex::Shard& AnnIndex::ShardFor(int64_t id) {
  const uint64_t hash = SplitMix64(static_cast<uint64_t>(id));
  return *shards_[hash % static_cast<uint64_t>(shards_.size())];
}

void AnnIndex::Insert(int64_t id, const std::vector<float>& vector) {
  HG_CHECK_GE(id, 0);
  HG_CHECK_LT(id, kMaxId);
  HG_CHECK_EQ(static_cast<int>(vector.size()), options_.dim);
  ShardFor(id).Insert(id, vector);
  InsertCounter().Increment();
  SizeGauge().Add(1.0);
}

int64_t AnnIndex::size() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->count();
  }
  return total;
}

std::vector<AnnIndex::Hit> AnnIndex::Search(const std::vector<float>& query,
                                            int n, int64_t exclude) const {
  HG_CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  if (n <= 0) return {};
  SearchCounter().Increment();
  int64_t dist_evals = 0;
  // Per-shard top lists, each sorted best-first.
  std::vector<std::vector<Hit>> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    // Ask for one extra hit so excluding the query itself still leaves n.
    const std::vector<Scored> found =
        shard.Search(query.data(), n + 1, &dist_evals);
    for (const Scored& f : found) {
      const int64_t hit_id = shard.ids[static_cast<size_t>(f.slot)];
      if (hit_id == exclude) continue;
      per_shard[s].push_back(Hit{hit_id, f.sim});
    }
    // Shard results arrive tied-broken by slot; the public contract is
    // ties by ascending external id.
    std::sort(per_shard[s].begin(), per_shard[s].end(),
              [](const Hit& a, const Hit& b) {
                return a.similarity > b.similarity ||
                       (a.similarity == b.similarity && a.id < b.id);
              });
  }
  DistEvalCounter().Increment(dist_evals);
  // K-way heap merge of the sorted shard lists.
  struct Head {
    float sim;
    int64_t id;
    size_t shard;
    size_t pos;
  };
  auto head_worse = [](const Head& a, const Head& b) {
    return a.sim < b.sim || (a.sim == b.sim && a.id > b.id);
  };
  std::priority_queue<Head, std::vector<Head>, decltype(head_worse)> heads(
      head_worse);
  for (size_t s = 0; s < per_shard.size(); ++s) {
    if (!per_shard[s].empty()) {
      heads.push(Head{per_shard[s][0].similarity, per_shard[s][0].id, s, 0});
    }
  }
  std::vector<Hit> merged;
  merged.reserve(static_cast<size_t>(n));
  while (!heads.empty() && static_cast<int>(merged.size()) < n) {
    const Head head = heads.top();
    heads.pop();
    merged.push_back(Hit{head.id, head.sim});
    const size_t next = head.pos + 1;
    if (next < per_shard[head.shard].size()) {
      const Hit& h = per_shard[head.shard][next];
      heads.push(Head{h.similarity, h.id, head.shard, next});
    }
  }
  return merged;
}

std::vector<AnnIndex::Hit> AnnIndex::SearchBruteForce(
    const std::vector<float>& query, int n, int64_t exclude) const {
  HG_CHECK_EQ(static_cast<int>(query.size()), options_.dim);
  if (n <= 0) return {};
  std::vector<Hit> all;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    for (int32_t slot = 0; slot < shard->count(); ++slot) {
      const int64_t id = shard->ids[static_cast<size_t>(slot)];
      if (id == exclude) continue;
      all.push_back(Hit{id, Dot(query.data(), shard->Vec(slot), options_.dim)});
    }
  }
  const size_t keep = std::min<size_t>(static_cast<size_t>(n), all.size());
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const Hit& a, const Hit& b) {
                      return a.similarity > b.similarity ||
                             (a.similarity == b.similarity && a.id < b.id);
                    });
  all.resize(keep);
  return all;
}

Status AnnIndex::CheckInvariants() const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const int32_t n = shard.count();
    const std::string where = "shard " + std::to_string(s) + ": ";
    if (n == 0) {
      if (shard.entry != -1) {
        return Status::Internal(where + "empty shard has an entry point");
      }
      continue;
    }
    if (shard.entry < 0 || shard.entry >= n) {
      return Status::Internal(where + "entry point out of range");
    }
    if (shard.levels[static_cast<size_t>(shard.entry)] != shard.max_level) {
      return Status::Internal(where + "entry point is not at max_level");
    }
    for (int32_t u = 0; u < n; ++u) {
      const int level = shard.levels[static_cast<size_t>(u)];
      if (level < 0 || level > shard.max_level) {
        return Status::Internal(where + "node level out of range");
      }
      const auto it = shard.upper.find(u);
      const int upper_layers =
          it == shard.upper.end() ? 0 : static_cast<int>(it->second.size());
      if (upper_layers != level) {
        return Status::Internal(where + "upper layer count != node level");
      }
      for (int layer = 0; layer <= level; ++layer) {
        const auto [list, size] = shard.Links(u, layer);
        if (size > shard.LayerCap(layer)) {
          return Status::Internal(where + "link list over capacity");
        }
        for (int i = 0; i < size; ++i) {
          const int32_t v = list[i];
          if (v < 0 || v >= n || v == u) {
            return Status::Internal(where + "link target out of range");
          }
          if (shard.levels[static_cast<size_t>(v)] < layer) {
            return Status::Internal(where + "link target below layer");
          }
          for (int j = i + 1; j < size; ++j) {
            if (list[j] == v) {
              return Status::Internal(where + "duplicate link");
            }
          }
          // Bidirectionality: v must list u at the same layer.
          const auto [back, back_size] = shard.Links(v, layer);
          bool found = false;
          for (int j = 0; j < back_size; ++j) found |= back[j] == u;
          if (!found) {
            return Status::Internal(where + "missing reverse link");
          }
        }
      }
    }
    // Reachability from the entry point at every layer (BFS).
    for (int layer = 0; layer <= shard.max_level; ++layer) {
      if (shard.levels[static_cast<size_t>(shard.entry)] < layer) {
        return Status::Internal(where + "entry below its own max level");
      }
      std::vector<char> seen(static_cast<size_t>(n), 0);
      std::vector<int32_t> queue = {shard.entry};
      seen[static_cast<size_t>(shard.entry)] = 1;
      while (!queue.empty()) {
        const int32_t u = queue.back();
        queue.pop_back();
        const auto [list, size] = shard.Links(u, layer);
        for (int i = 0; i < size; ++i) {
          if (!seen[static_cast<size_t>(list[i])]) {
            seen[static_cast<size_t>(list[i])] = 1;
            queue.push_back(list[i]);
          }
        }
      }
      for (int32_t u = 0; u < n; ++u) {
        if (shard.levels[static_cast<size_t>(u)] >= layer &&
            !seen[static_cast<size_t>(u)]) {
          return Status::Internal(where + "node unreachable at layer " +
                                  std::to_string(layer));
        }
      }
    }
  }
  return Status::Ok();
}

// -- Persistence --------------------------------------------------------
//
// HGCK image, model tag "HierGATAnnIndex" (DESIGN.md §16):
//   meta: format=ann-hnsw-v1, dim, num_shards, max_neighbors,
//         ef_construction, ef_search, seed, shard<k>.entry,
//         shard<k>.max_level, shard<k>.count
//   tensors (per non-empty shard k; all f32, integers stored exactly):
//     shard<k>.vectors [n, dim]   normalized embeddings
//     shard<k>.ids     [n, 2]     external id split hi = id >> 24,
//                                 lo = id & 0xffffff (ids < 2^47)
//     shard<k>.levels  [n]
//     shard<k>.links0  [n, 2M]    layer-0 adjacency, -1 padded
//     shard<k>.upper   [rows, 3]  (node, layer, neighbor) triples for
//                                 layers >= 1 (absent when none)
// The container's CRC covers every byte (like Q8_0 slots); Parse then
// re-validates all structural fields before allocating the graph.

namespace {

constexpr const char* kAnnModelTag = "HierGATAnnIndex";
constexpr const char* kAnnFormat = "ann-hnsw-v1";

std::string ShardKey(size_t shard, const char* field) {
  return "shard" + std::to_string(shard) + "." + field;
}

/// Reads a stored f32 that must hold an exact small integer.
Status AsInt(float value, int64_t min, int64_t max, const char* what,
             int64_t* out) {
  if (!(value >= static_cast<float>(min)) ||
      !(value <= static_cast<float>(max)) ||
      value != std::floor(value)) {
    return Status::InvalidArgument(std::string("ann image: ") + what +
                                   " is not an integer in range");
  }
  *out = static_cast<int64_t>(value);
  return Status::Ok();
}

}  // namespace

StatusOr<std::string> AnnIndex::SerializeToString() const {
  HG_TRACE_SPAN("AnnIndex::Serialize");
  TensorWriter writer(kAnnModelTag);
  writer.SetMeta("format", kAnnFormat);
  writer.SetMetaInt("dim", options_.dim);
  writer.SetMetaInt("num_shards", options_.num_shards);
  writer.SetMetaInt("max_neighbors", options_.max_neighbors);
  writer.SetMetaInt("ef_construction", options_.ef_construction);
  writer.SetMetaInt("ef_search", options_.ef_search);
  writer.SetMeta("seed", std::to_string(options_.seed));
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const int32_t n = shard.count();
    if (n >= kMaxExactF32) {
      return Status::FailedPrecondition(
          "ann: shard too large for f32-exact serialization");
    }
    writer.SetMetaInt(ShardKey(s, "count"), n);
    writer.SetMetaInt(ShardKey(s, "entry"), shard.entry);
    writer.SetMetaInt(ShardKey(s, "max_level"), shard.max_level);
    if (n == 0) continue;
    Tensor vectors = Tensor::FromVector(
        {n, options_.dim},
        std::vector<float>(shard.vectors.begin(), shard.vectors.end()));
    Status status = writer.Add(ShardKey(s, "vectors"), vectors);
    if (!status.ok()) return status;
    std::vector<float> id_parts(static_cast<size_t>(n) * 2);
    for (int32_t i = 0; i < n; ++i) {
      const int64_t id = shard.ids[static_cast<size_t>(i)];
      id_parts[static_cast<size_t>(i) * 2] =
          static_cast<float>(id >> 24);
      id_parts[static_cast<size_t>(i) * 2 + 1] =
          static_cast<float>(id & 0xffffff);
    }
    status = writer.Add(ShardKey(s, "ids"),
                        Tensor::FromVector({n, 2}, std::move(id_parts)));
    if (!status.ok()) return status;
    status = writer.Add(
        ShardKey(s, "levels"),
        Tensor::FromVector({n}, std::vector<float>(shard.levels.begin(),
                                                   shard.levels.end())));
    if (!status.ok()) return status;
    status = writer.Add(
        ShardKey(s, "links0"),
        Tensor::FromVector({n, shard.l0_cap},
                           std::vector<float>(shard.links0.begin(),
                                              shard.links0.end())));
    if (!status.ok()) return status;
    std::vector<float> upper_rows;
    for (int32_t u = 0; u < n; ++u) {
      const auto it = shard.upper.find(u);
      if (it == shard.upper.end()) continue;
      for (size_t layer = 0; layer < it->second.size(); ++layer) {
        for (const int32_t v : it->second[layer]) {
          upper_rows.push_back(static_cast<float>(u));
          upper_rows.push_back(static_cast<float>(layer + 1));
          upper_rows.push_back(static_cast<float>(v));
        }
      }
    }
    if (!upper_rows.empty()) {
      const int rows = static_cast<int>(upper_rows.size() / 3);
      status = writer.Add(ShardKey(s, "upper"),
                          Tensor::FromVector({rows, 3}, std::move(upper_rows)));
      if (!status.ok()) return status;
    }
  }
  return writer.SerializeToString();
}

Status AnnIndex::Save(const std::string& path) const {
  StatusOr<std::string> bytes = SerializeToString();
  if (!bytes.ok()) return bytes.status();
  return WriteFileAtomic(path, bytes.value());
}

StatusOr<AnnIndex> AnnIndex::Parse(const std::string& bytes) {
  HG_TRACE_SPAN("AnnIndex::Parse");
  StatusOr<TensorReader> reader_or = TensorReader::Parse(bytes);
  if (!reader_or.ok()) return reader_or.status();
  const TensorReader& reader = reader_or.value();
  if (reader.model_tag() != kAnnModelTag) {
    return Status::InvalidArgument("ann image: wrong model tag \"" +
                                   reader.model_tag() + "\"");
  }
  const std::string* format = reader.FindMeta("format");
  if (format == nullptr || *format != kAnnFormat) {
    return Status::InvalidArgument("ann image: unknown format");
  }
  AnnIndexOptions options;
  StatusOr<int64_t> meta_int = reader.GetMetaInt("dim");
  if (!meta_int.ok()) return meta_int.status();
  options.dim = static_cast<int>(meta_int.value());
  meta_int = reader.GetMetaInt("num_shards");
  if (!meta_int.ok()) return meta_int.status();
  options.num_shards = static_cast<int>(meta_int.value());
  meta_int = reader.GetMetaInt("max_neighbors");
  if (!meta_int.ok()) return meta_int.status();
  options.max_neighbors = static_cast<int>(meta_int.value());
  meta_int = reader.GetMetaInt("ef_construction");
  if (!meta_int.ok()) return meta_int.status();
  options.ef_construction = static_cast<int>(meta_int.value());
  meta_int = reader.GetMetaInt("ef_search");
  if (!meta_int.ok()) return meta_int.status();
  options.ef_search = static_cast<int>(meta_int.value());
  const std::string* seed_text = reader.FindMeta("seed");
  if (seed_text == nullptr) {
    return Status::InvalidArgument("ann image: missing seed");
  }
  options.seed = std::strtoull(seed_text->c_str(), nullptr, 10);
  Status valid = ValidateOptions(options);
  if (!valid.ok()) return valid;

  AnnIndex index(options);
  for (size_t s = 0; s < index.shards_.size(); ++s) {
    Shard& shard = *index.shards_[s];
    meta_int = reader.GetMetaInt(ShardKey(s, "count"));
    if (!meta_int.ok()) return meta_int.status();
    const int64_t n64 = meta_int.value();
    if (n64 < 0 || n64 >= kMaxExactF32) {
      return Status::InvalidArgument("ann image: shard count out of range");
    }
    const int32_t n = static_cast<int32_t>(n64);
    meta_int = reader.GetMetaInt(ShardKey(s, "entry"));
    if (!meta_int.ok()) return meta_int.status();
    const int64_t entry = meta_int.value();
    meta_int = reader.GetMetaInt(ShardKey(s, "max_level"));
    if (!meta_int.ok()) return meta_int.status();
    const int64_t max_level = meta_int.value();
    if (n == 0) {
      if (entry != -1 || max_level != -1) {
        return Status::InvalidArgument(
            "ann image: empty shard with graph state");
      }
      continue;
    }
    if (entry < 0 || entry >= n || max_level < 0 || max_level > kMaxLevel) {
      return Status::InvalidArgument(
          "ann image: entry/max_level out of range");
    }
    // Shapes must match the meta before any ReadInto allocates.
    const Shape* shape = reader.FindShape(ShardKey(s, "vectors"));
    if (shape == nullptr || shape->size() != 2 || (*shape)[0] != n ||
        (*shape)[1] != options.dim) {
      return Status::InvalidArgument("ann image: bad vectors shape");
    }
    Tensor vectors = Tensor::Zeros({n, options.dim});
    Status status = reader.ReadInto(ShardKey(s, "vectors"), &vectors);
    if (!status.ok()) return status;
    for (const float v : vectors.data()) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("ann image: non-finite vector value");
      }
    }
    shard.vectors.assign(vectors.data().begin(), vectors.data().end());
    shard.RequantizeAll();

    shape = reader.FindShape(ShardKey(s, "ids"));
    if (shape == nullptr || shape->size() != 2 || (*shape)[0] != n ||
        (*shape)[1] != 2) {
      return Status::InvalidArgument("ann image: bad ids shape");
    }
    Tensor ids = Tensor::Zeros({n, 2});
    status = reader.ReadInto(ShardKey(s, "ids"), &ids);
    if (!status.ok()) return status;
    shard.ids.resize(static_cast<size_t>(n));
    for (int32_t i = 0; i < n; ++i) {
      int64_t hi = 0, lo = 0;
      status = AsInt(ids.at(i, 0), 0, (kMaxId >> 24) - 1, "id", &hi);
      if (!status.ok()) return status;
      status = AsInt(ids.at(i, 1), 0, 0xffffff, "id", &lo);
      if (!status.ok()) return status;
      shard.ids[static_cast<size_t>(i)] = (hi << 24) | lo;
    }

    shape = reader.FindShape(ShardKey(s, "levels"));
    if (shape == nullptr || shape->size() != 1 || (*shape)[0] != n) {
      return Status::InvalidArgument("ann image: bad levels shape");
    }
    Tensor levels = Tensor::Zeros({n});
    status = reader.ReadInto(ShardKey(s, "levels"), &levels);
    if (!status.ok()) return status;
    shard.levels.resize(static_cast<size_t>(n));
    for (int32_t i = 0; i < n; ++i) {
      int64_t level = 0;
      status = AsInt(levels.data()[static_cast<size_t>(i)], 0, max_level,
                     "level", &level);
      if (!status.ok()) return status;
      shard.levels[static_cast<size_t>(i)] = static_cast<int32_t>(level);
      if (level >= 1) {
        shard.upper.emplace(i, std::vector<std::vector<int32_t>>(
                                   static_cast<size_t>(level)));
      }
    }
    if (shard.levels[static_cast<size_t>(entry)] != max_level) {
      return Status::InvalidArgument("ann image: entry not at max_level");
    }

    shape = reader.FindShape(ShardKey(s, "links0"));
    if (shape == nullptr || shape->size() != 2 || (*shape)[0] != n ||
        (*shape)[1] != shard.l0_cap) {
      return Status::InvalidArgument("ann image: bad links0 shape");
    }
    Tensor links0 = Tensor::Zeros({n, shard.l0_cap});
    status = reader.ReadInto(ShardKey(s, "links0"), &links0);
    if (!status.ok()) return status;
    shard.links0.assign(static_cast<size_t>(n) * shard.l0_cap, -1);
    shard.links0_size.assign(static_cast<size_t>(n), 0);
    for (int32_t u = 0; u < n; ++u) {
      bool ended = false;
      for (int i = 0; i < shard.l0_cap; ++i) {
        const float raw = links0.at(u, i);
        if (raw == -1.0f) {
          ended = true;
          continue;
        }
        if (ended) {
          return Status::InvalidArgument(
              "ann image: link after end-of-list padding");
        }
        int64_t v = 0;
        status = AsInt(raw, 0, n - 1, "layer-0 link", &v);
        if (!status.ok()) return status;
        if (v == u) {
          return Status::InvalidArgument("ann image: self link");
        }
        shard.links0[static_cast<size_t>(u) * shard.l0_cap + i] =
            static_cast<int32_t>(v);
        ++shard.links0_size[static_cast<size_t>(u)];
      }
    }

    if (reader.Contains(ShardKey(s, "upper"))) {
      shape = reader.FindShape(ShardKey(s, "upper"));
      if (shape == nullptr || shape->size() != 2 || (*shape)[1] != 3 ||
          (*shape)[0] < 1) {
        return Status::InvalidArgument("ann image: bad upper shape");
      }
      const int rows = (*shape)[0];
      Tensor upper = Tensor::Zeros({rows, 3});
      status = reader.ReadInto(ShardKey(s, "upper"), &upper);
      if (!status.ok()) return status;
      for (int r = 0; r < rows; ++r) {
        int64_t u = 0, layer = 0, v = 0;
        status = AsInt(upper.at(r, 0), 0, n - 1, "upper node", &u);
        if (!status.ok()) return status;
        status = AsInt(upper.at(r, 1), 1, kMaxLevel, "upper layer", &layer);
        if (!status.ok()) return status;
        status = AsInt(upper.at(r, 2), 0, n - 1, "upper link", &v);
        if (!status.ok()) return status;
        if (layer > shard.levels[static_cast<size_t>(u)] || v == u) {
          return Status::InvalidArgument("ann image: invalid upper link");
        }
        auto& lists = shard.upper[static_cast<int32_t>(u)];
        std::vector<int32_t>& list = lists[static_cast<size_t>(layer - 1)];
        if (static_cast<int>(list.size()) >= options.max_neighbors) {
          return Status::InvalidArgument(
              "ann image: upper link list over capacity");
        }
        list.push_back(static_cast<int32_t>(v));
      }
    }

    shard.entry = static_cast<int32_t>(entry);
    shard.max_level = static_cast<int32_t>(max_level);
    // Replay the level-draw stream (one NextFloat per insert) so inserts
    // after a load continue exactly where a never-saved index would be.
    for (int32_t i = 0; i < n; ++i) shard.rng.NextFloat();
  }
  SizeGauge().Add(static_cast<double>(index.size()));
  return index;
}

StatusOr<AnnIndex> AnnIndex::Load(const std::string& path) {
  StatusOr<TensorReader> probe = TensorReader::Open(path);
  if (!probe.ok()) return probe.status();
  // Re-parse from the validated bytes via the shared path. Open already
  // did the CRC work; this keeps one semantic validator for both entry
  // points at the cost of re-reading a file that loads once per serve.
  std::string bytes;
  bytes.reserve(probe.value().file_bytes());
  {
    // TensorReader does not expose its bytes; read the file again.
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::IOError("ann: cannot reopen " + path);
    char buffer[1 << 16];
    size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      bytes.append(buffer, got);
    }
    std::fclose(f);
  }
  return Parse(bytes);
}

}  // namespace hiergat
