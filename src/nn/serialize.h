#ifndef HIERGAT_NN_SERIALIZE_H_
#define HIERGAT_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "tensor/tensor.h"

namespace hiergat {

/// Writes parameter tensors to a binary file. Format: magic, count, then
/// per tensor: rank, dims, float32 payload. Load requires an identical
/// architecture (same tensor count and shapes in the same order).
Status SaveParameters(const std::string& path,
                      const std::vector<Tensor>& params);

/// Reads a file written by SaveParameters into the given (already
/// constructed) parameters, validating shapes.
Status LoadParameters(const std::string& path, std::vector<Tensor>* params);

}  // namespace hiergat

#endif  // HIERGAT_NN_SERIALIZE_H_
