#include "text/mini_lm.h"

#include <algorithm>

#include "core/logging.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace hiergat {

const char* LmSizeName(LmSize size) {
  switch (size) {
    case LmSize::kSmall:
      return "MiniLM-S";
    case LmSize::kMedium:
      return "MiniLM-M";
    case LmSize::kLarge:
      return "MiniLM-L";
  }
  return "MiniLM-?";
}

TransformerConfig LmConfigFor(LmSize size) {
  TransformerConfig config;
  switch (size) {
    case LmSize::kSmall:
      // Two layers minimum: token-twin detection across [SEP] needs one
      // matching layer plus one aggregation layer.
      config.dim = 32;
      config.num_heads = 2;
      config.num_layers = 2;
      config.ffn_dim = 64;
      break;
    case LmSize::kMedium:
      config.dim = 48;
      config.num_heads = 2;
      config.num_layers = 2;
      config.ffn_dim = 96;
      break;
    case LmSize::kLarge:
      config.dim = 64;
      config.num_heads = 4;
      config.num_layers = 3;
      config.ffn_dim = 128;
      break;
  }
  return config;
}

MiniLm::MiniLm(LmSize size, const Vocabulary* vocab, uint64_t seed)
    : size_(size), config_(LmConfigFor(size)), vocab_(vocab) {
  HG_CHECK(vocab != nullptr);
  Rng rng(seed);
  token_table_ =
      std::make_unique<Embedding>(vocab->size(), config_.dim, rng, 0.02f);
  // Seed every row with its hashed-n-gram vector so surface-form
  // similarity is present before any training (FastText behaviour).
  HashedEmbeddings hashed(config_.dim, 3, 5, seed);
  for (int id = Vocabulary::kNumSpecial; id < vocab->size(); ++id) {
    token_table_->SetRow(id, hashed.WordVector(vocab->Token(id)));
  }
  segment_table_ = std::make_unique<Embedding>(2, config_.dim, rng, 0.05f);
  encoder_ = std::make_unique<TransformerEncoder>(config_, rng);
  mlm_head_ = std::make_unique<Linear>(config_.dim, vocab->size(), rng);
  pair_head_ = std::make_unique<Linear>(config_.dim, 2, rng);
}

Tensor MiniLm::Embed(const std::vector<int>& ids) const {
  return token_table_->Forward(ids);
}

Tensor MiniLm::Encode(const std::vector<int>& ids, bool training,
                      Rng& rng) const {
  return encoder_->Forward(Embed(ids), training, rng);
}

Tensor MiniLm::EncodePair(const std::vector<int>& ids,
                          const std::vector<int>& segments, bool training,
                          Rng& rng) const {
  return encoder_->Forward(AddSegments(Embed(ids), segments), training, rng);
}

Tensor MiniLm::AddSegments(const Tensor& embedded,
                           const std::vector<int>& segments) const {
  HG_CHECK_EQ(embedded.dim(0), static_cast<int>(segments.size()));
  return Add(embedded, segment_table_->Forward(segments));
}

Tensor MiniLm::EncodeEmbedded(const Tensor& embedded, bool training,
                              Rng& rng, bool add_positions) const {
  return encoder_->Forward(embedded, training, rng, add_positions);
}

float MiniLm::Pretrain(const std::vector<std::vector<int>>& corpus,
                       int steps, float lr, Rng& rng) {
  if (corpus.empty() || steps <= 0) return 0.0f;
  std::vector<Tensor> params;
  AppendParameters(&params, token_table_->Parameters());
  AppendParameters(&params, encoder_->Parameters());
  AppendParameters(&params, mlm_head_->Parameters());
  Adam optimizer(params, lr);
  float running_loss = 0.0f;
  int counted = 0;
  for (int step = 0; step < steps; ++step) {
    const std::vector<int>& sentence =
        corpus[rng.NextUint64(corpus.size())];
    if (sentence.size() < 2) continue;
    // Mask ~15% of positions (at least one).
    std::vector<int> masked = sentence;
    std::vector<int> positions;
    for (size_t i = 0; i < sentence.size(); ++i) {
      if (rng.NextBool(0.15f)) {
        positions.push_back(static_cast<int>(i));
        masked[i] = Vocabulary::kMask;
      }
    }
    if (positions.empty()) {
      const size_t i = rng.NextUint64(sentence.size());
      positions.push_back(static_cast<int>(i));
      masked[i] = Vocabulary::kMask;
    }
    Tensor encoded = Encode(masked, /*training=*/true, rng);
    Tensor logits = mlm_head_->Forward(GatherRows(encoded, positions));
    std::vector<int> labels;
    labels.reserve(positions.size());
    for (int p : positions) labels.push_back(sentence[static_cast<size_t>(p)]);
    Tensor loss = SoftmaxCrossEntropy(logits, labels);
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.ClipGradNorm(5.0f);
    optimizer.Step();
    running_loss += loss.item();
    ++counted;
  }
  return counted > 0 ? running_loss / static_cast<float>(counted) : 0.0f;
}

Tensor MiniLm::PairLogits(const std::vector<int>& ids,
                          const std::vector<int>& segments, bool training,
                          Rng& rng) const {
  Tensor encoded = EncodePair(ids, segments, training, rng);
  return pair_head_->Forward(SliceRows(encoded, 0, 1));
}

float MiniLm::PretrainPaired(const std::vector<std::vector<int>>& corpus,
                             int steps, float lr, Rng& rng) {
  if (corpus.size() < 2 || steps <= 0) return 0.0f;
  std::vector<Tensor> params;
  AppendParameters(&params, token_table_->Parameters());
  AppendParameters(&params, segment_table_->Parameters());
  AppendParameters(&params, encoder_->Parameters());
  AppendParameters(&params, pair_head_->Parameters());
  Adam optimizer(params, lr);

  // A corrupted view of a sentence: token drops, adjacent swaps, and a
  // few token substitutions — mimicking the full view noise (drops,
  // reorder, typos, synonyms) between two data sources. Positives in
  // this objective tolerate light substitution, so the learned boundary
  // is "how much differs", not "anything differs".
  const size_t corpus_size = corpus.size();
  auto corrupt = [&rng, &corpus, corpus_size](
                     const std::vector<int>& sentence, float substitution) {
    std::vector<int> view;
    view.reserve(sentence.size());
    for (int id : sentence) {
      if (rng.NextBool(0.15f) && sentence.size() > 1) continue;
      if (rng.NextBool(substitution)) {
        const std::vector<int>& donor = corpus[rng.NextUint64(corpus_size)];
        view.push_back(donor[rng.NextUint64(donor.size())]);
        continue;
      }
      view.push_back(id);
    }
    if (view.empty()) view.push_back(sentence.front());
    for (size_t s = 0; s + 1 < view.size(); ++s) {
      if (rng.NextBool(0.1f)) std::swap(view[s], view[s + 1]);
    }
    return view;
  };

  float running_loss = 0.0f;
  int counted = 0;
  for (int step = 0; step < steps; ++step) {
    const size_t i = rng.NextUint64(corpus.size());
    const bool same = rng.NextBool(0.5f);
    std::vector<int> second;
    if (same) {
      second = corrupt(corpus[i], /*substitution=*/0.08f);
    } else if (rng.NextBool(0.5f)) {
      // Hard negative: a near-copy with ~35% of tokens substituted from
      // another sentence — teaches that sequences sharing most tokens
      // but differing in a few discriminative ones are NOT the same
      // (the Figure 1 phenomenon, learned without labels).
      size_t j = rng.NextUint64(corpus.size());
      if (j == i) j = (j + 1) % corpus.size();
      const std::vector<int>& donor = corpus[j];
      second = corrupt(corpus[i], 0.0f);
      bool mutated = false;
      for (int& id : second) {
        if (rng.NextBool(0.35f)) {
          id = donor[rng.NextUint64(donor.size())];
          mutated = true;
        }
      }
      if (!mutated && !second.empty()) {
        second[rng.NextUint64(second.size())] =
            donor[rng.NextUint64(donor.size())];
      }
    } else {
      // Easy negative: a different sentence.
      size_t j = rng.NextUint64(corpus.size());
      if (j == i) j = (j + 1) % corpus.size();
      second = corrupt(corpus[j], 0.08f);
    }
    std::vector<int> ids = {Vocabulary::kCls};
    for (int id : corrupt(corpus[i], /*substitution=*/0.08f)) ids.push_back(id);
    ids.push_back(Vocabulary::kSep);
    std::vector<int> segments(ids.size(), 0);
    for (int id : second) {
      ids.push_back(id);
      segments.push_back(1);
    }
    ids.push_back(Vocabulary::kSep);
    segments.push_back(1);

    Tensor encoded = EncodePair(ids, segments, /*training=*/true, rng);
    Tensor logits = pair_head_->Forward(SliceRows(encoded, 0, 1));
    Tensor loss = SoftmaxCrossEntropy(logits, {same ? 1 : 0});
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.ClipGradNorm(5.0f);
    optimizer.Step();
    running_loss += loss.item();
    ++counted;
  }
  return counted > 0 ? running_loss / static_cast<float>(counted) : 0.0f;
}

std::vector<Tensor> MiniLm::FineTuneParameters(
    bool include_token_table) const {
  std::vector<Tensor> params;
  if (include_token_table) {
    AppendParameters(&params, token_table_->Parameters());
  }
  AppendParameters(&params, segment_table_->Parameters());
  AppendParameters(&params, encoder_->Parameters());
  return params;
}

std::vector<Tensor> MiniLm::Parameters() const {
  return FineTuneParameters(/*include_token_table=*/true);
}

}  // namespace hiergat
