// Micro-benchmarks of the substrate the models run on: tensor ops,
// autograd, tokenizer, TF-IDF blocking, HHG construction, and the
// hashed-embedding ablation (hashed n-gram vs random init similarity).

#include <benchmark/benchmark.h>

#include "blocking/blocker.h"
#include "data/synthetic.h"
#include "graph/hhg.h"
#include "tensor/ops.h"
#include "text/hashed_embeddings.h"
#include "text/tokenizer.h"

namespace hiergat {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Tensor a = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    Tensor s = Softmax(a);
    benchmark::DoNotOptimize(s.data().data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(256);

void BM_AutogradAttentionStep(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  const int dim = 32;
  Rng rng(3);
  Tensor wq = Tensor::Xavier(dim, dim, rng, true);
  Tensor wk = Tensor::Xavier(dim, dim, rng, true);
  Tensor wv = Tensor::Xavier(dim, dim, rng, true);
  Tensor x = Tensor::Randn({len, dim}, rng);
  for (auto _ : state) {
    Tensor attn = Softmax(
        Scale(MatMul(MatMul(x, wq), Transpose(MatMul(x, wk))), 0.18f));
    Tensor loss = Mean(MatMul(attn, MatMul(x, wv)));
    wq.ZeroGrad();
    wk.ZeroGrad();
    wv.ZeroGrad();
    loss.Backward();
    benchmark::DoNotOptimize(wq.grad().data());
  }
}
BENCHMARK(BM_AutogradAttentionStep)->Arg(16)->Arg(64);

void BM_Tokenizer(benchmark::State& state) {
  const std::string text =
      "Acme TurboWidget X-1000 wireless portable digital compact widget "
      "with advanced premium features, model tp-link AC1750!";
  for (auto _ : state) {
    auto tokens = Tokenize(text);
    benchmark::DoNotOptimize(tokens.data());
  }
}
BENCHMARK(BM_Tokenizer);

void BM_HashedEmbedding(benchmark::State& state) {
  HashedEmbeddings emb(48);
  int i = 0;
  for (auto _ : state) {
    auto v = emb.WordVector("coolmax" + std::to_string(++i % 100));
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_HashedEmbedding);

void BM_TfIdfTopN(benchmark::State& state) {
  SyntheticSpec spec;
  spec.name = "bench";
  spec.seed = 5;
  TwoTableDataset raw =
      GenerateTwoTable(spec, 50, static_cast<int>(state.range(0)));
  TfIdfBlocker blocker(raw.table_b);
  int q = 0;
  for (auto _ : state) {
    auto top = blocker.TopN(raw.table_a[static_cast<size_t>(++q % 50)], 16);
    benchmark::DoNotOptimize(top.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TfIdfTopN)->Arg(200)->Arg(800);

void BM_HhgBuild(benchmark::State& state) {
  SyntheticSpec spec;
  spec.name = "bench";
  spec.num_pairs = 64;
  spec.seed = 6;
  PairDataset data = GeneratePairDataset(spec);
  // Collective-sized graph: 1 + 16 entities.
  std::vector<Entity> entities;
  for (int i = 0; i < 17 && i < static_cast<int>(data.train.size()); ++i) {
    entities.push_back(data.train[static_cast<size_t>(i)].left);
  }
  for (auto _ : state) {
    Hhg hhg = Hhg::Build(entities);
    benchmark::DoNotOptimize(hhg.num_tokens());
  }
}
BENCHMARK(BM_HhgBuild);

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    SyntheticSpec spec;
    spec.name = "bench";
    spec.num_pairs = static_cast<int>(state.range(0));
    spec.seed = 7;
    PairDataset data = GeneratePairDataset(spec);
    benchmark::DoNotOptimize(data.train.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SyntheticGeneration)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace hiergat

BENCHMARK_MAIN();
