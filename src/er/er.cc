#include "er/er.h"

#include <algorithm>
#include <cctype>

#include "core/logging.h"
#include "core/serialize.h"

namespace hiergat {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::unique_ptr<PairwiseModel> MakeMatcher(const std::string& name,
                                           const MatcherOptions& options) {
  const std::string key = Lower(name);
  if (key == "hiergat") {
    HierGatConfig config;
    config.lm_size = options.lm_size;
    if (options.lm_pretrain_steps >= 0) {
      config.lm_pretrain_steps = options.lm_pretrain_steps;
    }
    return std::make_unique<HierGatModel>(config);
  }
  if (key == "ditto") {
    DittoConfig config;
    config.lm_size = options.lm_size;
    if (options.lm_pretrain_steps >= 0) {
      config.lm_pretrain_steps = options.lm_pretrain_steps;
    }
    return std::make_unique<DittoModel>(config);
  }
  if (key == "deepmatcher" || key == "dm") {
    return std::make_unique<DeepMatcherModel>();
  }
  if (key == "dm+" || key == "dmplus") {
    return std::make_unique<DmPlusModel>();
  }
  if (key == "magellan") {
    return std::make_unique<MagellanModel>();
  }
  return nullptr;
}

std::unique_ptr<CollectiveModel> MakeCollectiveMatcher(
    const std::string& name, const MatcherOptions& options) {
  const std::string key = Lower(name);
  if (key == "hiergat+" || key == "hiergatplus") {
    HierGatPlusConfig config;
    config.lm_size = options.lm_size;
    if (options.lm_pretrain_steps >= 0) {
      config.lm_pretrain_steps = options.lm_pretrain_steps;
    }
    return std::make_unique<HierGatPlusModel>(config);
  }
  if (key == "gcn") return std::make_unique<GcnCollectiveModel>();
  if (key == "gat") return std::make_unique<GatCollectiveModel>();
  if (key == "hgat") return std::make_unique<HgatCollectiveModel>();
  return nullptr;
}

StatusOr<std::unique_ptr<PairwiseModel>> LoadMatcher(
    const std::string& path) {
  // Peek the tag first so we can report "unknown model" instead of a
  // confusing tag-mismatch error from the wrong Load.
  auto reader_or = TensorReader::Open(path);
  HG_RETURN_IF_ERROR(reader_or.status());
  const std::string tag = reader_or.value().model_tag();
  std::unique_ptr<PairwiseModel> model;
  if (tag == "HierGAT") {
    model = std::make_unique<HierGatModel>();
  } else {
    return Status::InvalidArgument(
        "checkpoint tag '" + tag + "' is not a known pairwise matcher");
  }
  HG_RETURN_IF_ERROR(model->Load(path));
  return StatusOr<std::unique_ptr<PairwiseModel>>(std::move(model));
}

StatusOr<std::unique_ptr<CollectiveModel>> LoadCollectiveMatcher(
    const std::string& path) {
  auto reader_or = TensorReader::Open(path);
  HG_RETURN_IF_ERROR(reader_or.status());
  const std::string tag = reader_or.value().model_tag();
  std::unique_ptr<CollectiveModel> model;
  if (tag == "HierGAT+") {
    model = std::make_unique<HierGatPlusModel>();
  } else {
    return Status::InvalidArgument(
        "checkpoint tag '" + tag + "' is not a known collective matcher");
  }
  HG_RETURN_IF_ERROR(model->Load(path));
  return StatusOr<std::unique_ptr<CollectiveModel>>(std::move(model));
}

}  // namespace hiergat
