file(REMOVE_RECURSE
  "CMakeFiles/contextual_test.dir/contextual_test.cc.o"
  "CMakeFiles/contextual_test.dir/contextual_test.cc.o.d"
  "contextual_test"
  "contextual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contextual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
