// Parity tests for the raw-pointer kernel layer against naive
// references, across the shapes that stress the blocking/unrolling
// (1x1, single row/col, tall/skinny, non-multiple-of-block), plus
// lifecycle tests for the pooled storage behind TensorImpl.

#include "tensor/kernels.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace hiergat {
namespace {

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = rng.NextGaussian();
  return v;
}

// Naive references: straightforward triple loops, no blocking.
void NaiveGemmNN(int m, int n, int k, float alpha, const float* a,
                 const float* b, float* c) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (int kk = 0; kk < k; ++kk)
        sum += a[static_cast<size_t>(i) * k + kk] *
               b[static_cast<size_t>(kk) * n + j];
      c[static_cast<size_t>(i) * n + j] += alpha * sum;
    }
}

void NaiveGemmNT(int m, int n, int k, float alpha, const float* a,
                 const float* b, float* c) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (int kk = 0; kk < k; ++kk)
        sum += a[static_cast<size_t>(i) * k + kk] *
               b[static_cast<size_t>(j) * k + kk];
      c[static_cast<size_t>(i) * n + j] += alpha * sum;
    }
}

void NaiveGemmTN(int m, int n, int k, float alpha, const float* a,
                 const float* b, float* c) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (int kk = 0; kk < k; ++kk)
        sum += a[static_cast<size_t>(kk) * m + i] *
               b[static_cast<size_t>(kk) * n + j];
      c[static_cast<size_t>(i) * n + j] += alpha * sum;
    }
}

struct GemmShape {
  int m, n, k;
};

// Odd shapes: unit, single row/column, tall/skinny, and sizes that are
// deliberately not multiples of the 4x16 micro-tile or the unroll-by-8
// dot-product width.
const GemmShape kShapes[] = {
    {1, 1, 1},  {1, 17, 1}, {1, 1, 9},   {5, 1, 7},   {1, 33, 12},
    {7, 5, 3},  {4, 16, 8}, {64, 3, 64}, {3, 64, 64}, {13, 31, 23},
    {33, 47, 19}, {17, 64, 5},
};

class GemmParity : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmParity, NNMatchesNaive) {
  const auto [m, n, k] = GetParam();
  const auto a = RandomVec(static_cast<size_t>(m) * k, 1);
  const auto b = RandomVec(static_cast<size_t>(k) * n, 2);
  std::vector<float> got(static_cast<size_t>(m) * n, 0.5f);
  std::vector<float> want = got;  // Same non-zero start: += semantics.
  kernels::GemmNN(m, n, k, 1.3f, a.data(), b.data(), got.data());
  NaiveGemmNN(m, n, k, 1.3f, a.data(), b.data(), want.data());
  for (size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-4f) << "element " << i;
}

TEST_P(GemmParity, NTMatchesNaive) {
  const auto [m, n, k] = GetParam();
  const auto a = RandomVec(static_cast<size_t>(m) * k, 3);
  const auto b = RandomVec(static_cast<size_t>(n) * k, 4);
  std::vector<float> got(static_cast<size_t>(m) * n, -0.25f);
  std::vector<float> want = got;
  kernels::GemmNT(m, n, k, 0.7f, a.data(), b.data(), got.data());
  NaiveGemmNT(m, n, k, 0.7f, a.data(), b.data(), want.data());
  for (size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-4f) << "element " << i;
}

TEST_P(GemmParity, TNMatchesNaive) {
  const auto [m, n, k] = GetParam();
  const auto a = RandomVec(static_cast<size_t>(k) * m, 5);
  const auto b = RandomVec(static_cast<size_t>(k) * n, 6);
  std::vector<float> got(static_cast<size_t>(m) * n, 1.0f);
  std::vector<float> want = got;
  kernels::GemmTN(m, n, k, -1.1f, a.data(), b.data(), got.data());
  NaiveGemmTN(m, n, k, -1.1f, a.data(), b.data(), want.data());
  for (size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-4f) << "element " << i;
}

INSTANTIATE_TEST_SUITE_P(OddShapes, GemmParity,
                         ::testing::ValuesIn(kShapes));

TEST(KernelsTest, BackwardVariantsMatchMatMulGradients) {
  // The NT/TN kernels are exactly the two MatMul backward shapes:
  // dA = dOut * B^T and dB = A^T * dOut. Check against autograd.
  Tensor a = Tensor::FromVector({3, 5}, RandomVec(15, 7), true);
  Tensor b = Tensor::FromVector({5, 4}, RandomVec(20, 8), true);
  Tensor loss = Sum(MatMul(a, b));
  loss.Backward();

  std::vector<float> ones(12, 1.0f);  // dOut of Sum is all ones.
  std::vector<float> da(15, 0.0f), db(20, 0.0f);
  kernels::GemmNT(3, 5, 4, 1.0f, ones.data(), b.data().data(), da.data());
  kernels::GemmTN(5, 4, 3, 1.0f, a.data().data(), ones.data(), db.data());
  for (size_t i = 0; i < da.size(); ++i)
    EXPECT_NEAR(da[i], a.grad()[i], 1e-4f);
  for (size_t i = 0; i < db.size(); ++i)
    EXPECT_NEAR(db[i], b.grad()[i], 1e-4f);
}

TEST(KernelsTest, SoftmaxRowsMatchesOp) {
  const auto x = RandomVec(3 * 7, 9);
  std::vector<float> y(x.size());
  kernels::SoftmaxRows(3, 7, x.data(), y.data());
  Tensor ref = Softmax(Tensor::FromVector({3, 7}, x));
  for (size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], ref.data()[i]);
  // In-place application is allowed.
  std::vector<float> inplace = x;
  kernels::SoftmaxRows(3, 7, inplace.data(), inplace.data());
  for (size_t i = 0; i < y.size(); ++i) EXPECT_EQ(inplace[i], y[i]);
}

TEST(KernelsTest, LayerNormRowsMatchesOp) {
  const auto x = RandomVec(4 * 6, 10);
  const auto gamma = RandomVec(6, 11);
  const auto beta = RandomVec(6, 12);
  std::vector<float> y(x.size()), xhat(x.size()), inv_std(4);
  kernels::LayerNormRows(4, 6, 1e-5f, x.data(), gamma.data(), beta.data(),
                         y.data(), xhat.data(), inv_std.data());
  Tensor ref = LayerNorm(Tensor::FromVector({4, 6}, x),
                         Tensor::FromVector({6}, gamma),
                         Tensor::FromVector({6}, beta));
  for (size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], ref.data()[i], 1e-5f);
}

// -- BufferPool lifecycle -------------------------------------------------

using internal_tensor::BufferPool;

TEST(BufferPoolTest, RecyclesBySizeClassAndZeroFills) {
  BufferPool& pool = BufferPool::ThreadLocal();
  pool.Trim();
  const auto before = pool.stats();

  std::vector<float> buf = pool.Acquire(100);
  ASSERT_EQ(buf.size(), 100u);
  EXPECT_GE(buf.capacity(), 128u);  // Rounded up to the class capacity.
  for (float v : buf) EXPECT_EQ(v, 0.0f);
  buf.assign(buf.size(), 3.5f);  // Dirty it before returning.
  const float* prev_ptr = buf.data();
  pool.Release(std::move(buf));
  EXPECT_GT(pool.retained_bytes(), 0u);

  // Same size class: served from the recycled buffer, zero-filled.
  std::vector<float> again = pool.Acquire(120);
  EXPECT_EQ(again.data(), prev_ptr);
  for (float v : again) EXPECT_EQ(v, 0.0f);

  const auto after = pool.stats();
  EXPECT_EQ(after.hits - before.hits, 1);
  EXPECT_EQ(after.misses - before.misses, 1);
  EXPECT_EQ(after.bytes_reused - before.bytes_reused,
            static_cast<int64_t>(120 * sizeof(float)));
  pool.Trim();
  EXPECT_EQ(pool.retained_bytes(), 0u);
}

TEST(BufferPoolTest, LargerClassServesSmallerRequest) {
  BufferPool& pool = BufferPool::ThreadLocal();
  pool.Trim();
  std::vector<float> big = pool.Acquire(4096);
  const float* big_ptr = big.data();
  pool.Release(std::move(big));
  // A much smaller request may still reuse the big buffer rather than
  // allocating.
  const auto before = pool.stats();
  std::vector<float> small = pool.Acquire(64);
  EXPECT_EQ(small.data(), big_ptr);
  EXPECT_EQ(pool.stats().hits - before.hits, 1);
  pool.Trim();
}

TEST(BufferPoolTest, TensorChurnUnderNoGradHitsPool) {
  NoGradGuard guard;
  BufferPool& pool = BufferPool::ThreadLocal();
  pool.Trim();
  Rng rng(13);
  Tensor w = Tensor::Randn({32, 32}, rng);
  const auto before = pool.stats();
  for (int i = 0; i < 10; ++i) {
    Tensor x = Tensor::Randn({8, 32}, rng);
    Tensor y = LinearOp(Relu(MatMul(x, w)), w);
    ASSERT_EQ(y.dim(1), 32);
    // The iteration's intermediates die here and return their buffers.
  }
  const auto after = pool.stats();
  EXPECT_GT(after.hits - before.hits, 0)
      << "inference-style churn must recycle buffers";
}

TEST(BufferPoolTest, ReshapeAliasesParentStorage) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  Tensor f = Flatten(a);
  // Same underlying buffer: no copies on the view path.
  EXPECT_EQ(r.data().data(), a.data().data());
  EXPECT_EQ(f.data().data(), a.data().data());
  // A write through the view is visible in the parent (shared storage).
  r.set(0, 0, 42.0f);
  EXPECT_EQ(a.at(0, 0), 42.0f);
}

TEST(BufferPoolTest, ReshapeGradientsStaySeparate) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4}, true);
  Tensor r = Reshape(a, {4});
  Tensor loss = Sum(Mul(r, r));
  loss.Backward();
  ASSERT_EQ(a.grad().size(), 4u);
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(a.grad()[3], 8.0f);
}

}  // namespace
}  // namespace hiergat
