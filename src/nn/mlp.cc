#include "nn/mlp.h"

#include "core/logging.h"
#include "tensor/ops.h"

namespace hiergat {

Mlp::Mlp(const std::vector<int>& dims, Rng& rng) : dims_(dims) {
  HG_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = Relu(h);
  }
  return h;
}

std::vector<Tensor> Mlp::Parameters() const {
  std::vector<Tensor> params;
  for (const auto& layer : layers_) {
    AppendParameters(&params, layer->Parameters());
  }
  return params;
}

Highway::Highway(int dim, Rng& rng) {
  transform_ = std::make_unique<Linear>(dim, dim, rng);
  gate_ = std::make_unique<Linear>(dim, dim, rng);
}

Tensor Highway::Forward(const Tensor& x) const {
  Tensor t = Sigmoid(gate_->Forward(x));
  Tensor h = Relu(transform_->Forward(x));
  Tensor ones = Tensor::Full(t.shape(), 1.0f);
  return Add(Mul(t, h), Mul(Sub(ones, t), x));
}

std::vector<Tensor> Highway::Parameters() const {
  std::vector<Tensor> params = transform_->Parameters();
  AppendParameters(&params, gate_->Parameters());
  return params;
}

}  // namespace hiergat
