// Inference-engine throughput: pairs/sec of the batched multi-threaded
// path (summary cache + worker pool) against the sequential per-pair
// loop, on blocker output where entities recur across candidate pairs.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "blocking/blocker.h"
#include "data/synthetic.h"
#include "er/engine.h"
#include "er/hiergat.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace hiergat {
namespace {

double Seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Exposes the raw forward so the bench can reproduce the pre-engine
/// scoring path exactly: one autograd graph per pair, no summary cache,
/// no NoGradGuard — what Evaluate()/PredictProbability cost at the seed.
class SeedPathHierGat : public HierGatModel {
 public:
  using HierGatModel::HierGatModel;
  float SeedPathScore(const EntityPair& pair) const {
    Rng unused(0);
    return Softmax(ForwardLogits(pair, /*training=*/false, unused)).at(0, 1);
  }
};

int main_impl(int argc, char** argv) {
  bench::PrintHeader(
      "Inference engine throughput",
      "batched scoring with the entity-summary cache and a work-stealing "
      "pool outperforms the sequential per-pair loop on blocker output");

  SyntheticSpec spec;
  spec.name = "engine-bench";
  spec.num_attributes = 3;
  spec.hardness = 0.5f;
  spec.noise = 0.05f;
  spec.desc_len = 6;
  spec.seed = 2024;

  // Blocker output: each table-A entity survives against several
  // table-B entities, so attribute values repeat across the workload —
  // the access pattern the summary cache exploits.
  const int table_a = std::max(30, static_cast<int>(40 * bench::Scale()));
  const int table_b = 3 * table_a;
  TwoTableDataset raw = GenerateTwoTable(spec, table_a, table_b);
  const std::vector<std::pair<int, int>> candidates =
      KeywordBlock(raw.table_a, raw.table_b, /*min_overlap=*/2);
  const std::set<std::pair<int, int>> gold(raw.matches.begin(),
                                           raw.matches.end());
  std::vector<EntityPair> workload;
  const size_t max_pairs =
      static_cast<size_t>(bench::IntEnv("HIERGAT_BENCH_ENGINE_PAIRS", 600));
  for (const auto& [a, b] : candidates) {
    if (workload.size() >= max_pairs) break;
    EntityPair pair;
    pair.left = raw.table_a[static_cast<size_t>(a)];
    pair.right = raw.table_b[static_cast<size_t>(b)];
    pair.label = gold.count({a, b}) ? 1 : 0;
    workload.push_back(std::move(pair));
  }
  std::printf("workload: %zu candidate pairs from %d x %d blocking\n\n",
              workload.size(), table_a, table_b);

  // A briefly fine-tuned matcher; scoring cost dominates this bench, so
  // training quality is irrelevant.
  SyntheticSpec train_spec = spec;
  train_spec.seed = 2025;
  train_spec.num_pairs = 200;
  PairDataset train_data = GeneratePairDataset(train_spec);
  HierGatConfig config;
  config.lm_size = LmSize::kSmall;
  config.lm_pretrain_steps = 0;
  SeedPathHierGat model(config);
  TrainOptions options = bench::BenchTrainOptions(7);
  options.epochs = 1;
  options.max_train_items = 32;
  model.Train(train_data, options);

  auto run_seed_path = [&]() {
    const auto start = std::chrono::steady_clock::now();
    for (const EntityPair& pair : workload) {
      (void)model.SeedPathScore(pair);
    }
    return Seconds(start);
  };
  auto run_sequential = [&]() {
    const auto start = std::chrono::steady_clock::now();
    for (const EntityPair& pair : workload) {
      (void)model.PredictProbability(pair);
    }
    return Seconds(start);
  };
  std::vector<EngineWorkerStats> worker_stats;
  auto run_engine = [&](int threads) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    InferenceEngine engine(engine_options);
    const auto start = std::chrono::steady_clock::now();
    (void)engine.Score(model, workload);
    const double seconds = Seconds(start);
    worker_stats = engine.worker_stats();
    return seconds;
  };

  // Baseline: the pre-engine per-pair loop — every forward builds an
  // autograd graph and nothing is cached.
  model.set_cache_enabled(false);
  model.set_graph_compile_enabled(false);
  model.InvalidateInferenceCache();
  const double seed_seconds = run_seed_path();

  // Same loop through the redesigned API: no-grad forwards, but still
  // fully eager — no compiled graphs, no cache. This is the
  // "eager single-thread" baseline the ISSUE's 2x acceptance bar is
  // measured against.
  const double eager_seconds = run_sequential();

  // Compiled scoring graphs on, cache still off: isolates the planned
  // arena replay (DESIGN.md §11) from cache reuse.
  model.set_graph_compile_enabled(true);
  model.InvalidateInferenceCache();
  const double compiled_seconds = run_sequential();
  const auto graph_stats = model.compiled_stats();

  model.set_cache_enabled(true);
  model.InvalidateInferenceCache();
  const double one_thread_seconds = run_engine(1);
  const auto cache_stats = model.summary_cache().stats();

  // The headline measurement (4-thread engine) repeats for stable
  // p50/p95; later reps score against a warm summary cache, which is
  // the steady-state deployment condition. With --trace_out=PATH the
  // reps record spans into a Chrome/Perfetto trace (one track per
  // engine worker).
  std::string trace_out;
  static const char kTraceFlag[] = "--trace_out=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(kTraceFlag, 0) == 0) {
      trace_out = std::string(argv[i]).substr(sizeof(kTraceFlag) - 1);
    }
  }
#if !defined(HIERGAT_NO_TRACING)
  if (!trace_out.empty()) obs::TraceRecorder::Global().Start();
#endif
  const int reps = std::max(1, bench::IntEnv("HIERGAT_BENCH_REPS", 3));
  std::vector<double> four_thread_reps;
  model.InvalidateInferenceCache();
  for (int r = 0; r < reps; ++r) {
    four_thread_reps.push_back(run_engine(4));
  }
  const double four_thread_seconds = bench::PercentileOf(four_thread_reps, 0.5);
#if !defined(HIERGAT_NO_TRACING)
  if (!trace_out.empty()) {
    obs::TraceRecorder::Global().Stop();
    if (obs::TraceRecorder::Global().WriteChromeTrace(trace_out)) {
      std::printf("trace written to %s (open in chrome://tracing)\n",
                  trace_out.c_str());
    }
  }
#endif

  // -- Q8_0 quantized weights (ordered last on purpose) ---------------
  // QuantizeWeights rewrites the f32 weights with their dequantized
  // values, so every f32 row above must be measured before this one.
  // Sequential compiled scoring with the cache off mirrors the
  // "compiled graphs, cache off" f32 row for a like-for-like latency
  // comparison; the Linear-vs-LinearQ8 node counters give the weight
  // bytes actually moved per replay on the same scoring path.
  const auto warm_stats = model.summary_cache().stats();
  auto node_counter = [](const std::string& name) {
    static const char kPrefix[] = "hiergat.graph.node.";
    for (const auto& [counter, value] :
         obs::MetricsRegistry::Global().CounterValues(kPrefix)) {
      if (counter == std::string(kPrefix) + name) return value;
    }
    return static_cast<int64_t>(0);
  };
  const double f32_linear_replays =
      static_cast<double>(node_counter("Linear.replays"));
  const double f32_linear_bytes =
      static_cast<double>(node_counter("Linear.est_bytes"));
  model.set_cache_enabled(false);
  model.set_graph_compile_enabled(true);
  {
    const Status quant_status = model.QuantizeWeights();
    if (!quant_status.ok()) {
      std::fprintf(stderr, "QuantizeWeights failed: %s\n",
                   quant_status.ToString().c_str());
      return 1;
    }
  }
  const double q8_seconds = run_sequential();
  const double q8_linear_replays =
      static_cast<double>(node_counter("LinearQ8.replays"));
  const double q8_linear_bytes =
      static_cast<double>(node_counter("LinearQ8.est_bytes"));
  const double f32_bytes_per_replay =
      f32_linear_replays > 0 ? f32_linear_bytes / f32_linear_replays : 0.0;
  const double q8_bytes_per_replay =
      q8_linear_replays > 0 ? q8_linear_bytes / q8_linear_replays : 0.0;
  const double linear_bytes_ratio =
      q8_bytes_per_replay > 0 ? f32_bytes_per_replay / q8_bytes_per_replay
                              : 0.0;

  const double n = static_cast<double>(workload.size());
  bench::Table table("Throughput (higher is better)",
                     {"path", "pairs/sec", "speedup"});
  table.AddRow({"seed per-pair loop (autograd, no cache)",
                bench::Fmt(n / seed_seconds, 1), "1.0x"});
  table.AddRow({"sequential eager, no-grad, no graphs/cache",
                bench::Fmt(n / eager_seconds, 1),
                bench::Fmt(seed_seconds / eager_seconds, 2) + "x"});
  table.AddRow({"sequential + compiled graphs, cache off",
                bench::Fmt(n / compiled_seconds, 1),
                bench::Fmt(seed_seconds / compiled_seconds, 2) + "x"});
  table.AddRow({"engine 1 thread, graphs + cache",
                bench::Fmt(n / one_thread_seconds, 1),
                bench::Fmt(seed_seconds / one_thread_seconds, 2) + "x"});
  table.AddRow({"engine 4 threads, graphs + cache",
                bench::Fmt(n / four_thread_seconds, 1),
                bench::Fmt(seed_seconds / four_thread_seconds, 2) + "x"});
  table.AddRow({"sequential + compiled graphs, q8 weights",
                bench::Fmt(n / q8_seconds, 1),
                bench::Fmt(seed_seconds / q8_seconds, 2) + "x"});
  table.Print();
  std::printf(
      "\nq8 weights: Linear nodes move %.0f bytes/replay vs %.0f f32 "
      "(%.2fx less weight+activation traffic)\n",
      q8_bytes_per_replay, f32_bytes_per_replay, linear_bytes_ratio);
  std::printf(
      "\ncompiled scoring graphs: %d graphs, %zu arena bytes vs %zu eager "
      "intermediate bytes (%.0f%% folded away); planned+threaded batch is "
      "%.2fx the eager single-thread loop\n",
      graph_stats.num_graphs, graph_stats.plan_bytes, graph_stats.eager_bytes,
      100.0 * (1.0 - static_cast<double>(graph_stats.plan_bytes) /
                         static_cast<double>(std::max<size_t>(
                             1, graph_stats.eager_bytes))),
      eager_seconds / four_thread_seconds);
  std::printf(
      "\nsummary cache over one batch: %lld misses, %lld hits (%.0f%% of "
      "attribute encodes skipped)\n",
      static_cast<long long>(cache_stats.misses),
      static_cast<long long>(cache_stats.hits),
      100.0 * static_cast<double>(cache_stats.hits) /
          static_cast<double>(std::max<int64_t>(
              1, cache_stats.hits + cache_stats.misses)));
  std::printf(
      "note: thread speedup requires free cores; on a single-core host "
      "the gain comes from the cache alone.\n");

  // Machine-readable result (--json_out=PATH; schema in bench_common.h).
  bench::BenchResult result("engine_throughput");
  result.AddParam("pairs", static_cast<int>(workload.size()));
  result.AddParam("table_a", table_a);
  result.AddParam("table_b", table_b);
  result.AddParam("threads", 4);
  result.AddParam("scale", bench::Scale());
  result.SetLatencies(four_thread_reps);
  result.set_throughput(n / four_thread_seconds);
  result.AddMetric("seed_path_pairs_per_sec", n / seed_seconds);
  result.AddMetric("eager_pairs_per_sec", n / eager_seconds);
  result.AddMetric("compiled_pairs_per_sec", n / compiled_seconds);
  result.AddMetric("engine1_pairs_per_sec", n / one_thread_seconds);
  result.AddMetric("engine4_pairs_per_sec", n / four_thread_seconds);
  result.AddMetric("q8_pairs_per_sec", n / q8_seconds);
  result.AddMetric("q8_speedup_vs_eager", eager_seconds / q8_seconds);
  result.AddMetric("q8_vs_f32_compiled_speedup", compiled_seconds / q8_seconds);
  result.AddMetric("q8.linear_bytes_per_replay", q8_bytes_per_replay);
  result.AddMetric("f32.linear_bytes_per_replay", f32_bytes_per_replay);
  result.AddMetric("q8.linear_bytes_moved_ratio", linear_bytes_ratio);
  result.AddMetric("compiled_speedup_vs_eager",
                   eager_seconds / compiled_seconds);
  result.AddMetric("planned_threaded_speedup_vs_eager",
                   eager_seconds / four_thread_seconds);
  result.AddMetric("planned_threaded_speedup_vs_seed",
                   seed_seconds / four_thread_seconds);
  result.AddMetric("graph.num_graphs",
                   static_cast<double>(graph_stats.num_graphs));
  result.AddMetric("graph.plan_bytes",
                   static_cast<double>(graph_stats.plan_bytes));
  result.AddMetric("graph.eager_bytes",
                   static_cast<double>(graph_stats.eager_bytes));
  result.AddMetric(
      "graph.arena_reuse",
      1.0 - static_cast<double>(graph_stats.plan_bytes) /
                static_cast<double>(
                    std::max<size_t>(1, graph_stats.eager_bytes)));
  result.AddMetric("cache.hit_rate", warm_stats.HitRate());
  result.AddMetric("cache.hits", static_cast<double>(warm_stats.hits));
  result.AddMetric("cache.misses", static_cast<double>(warm_stats.misses));
  for (size_t w = 0; w < worker_stats.size(); ++w) {
    const std::string prefix = "engine.worker" + std::to_string(w);
    result.AddMetric(prefix + ".items",
                     static_cast<double>(worker_stats[w].items));
    result.AddMetric(prefix + ".steals",
                     static_cast<double>(worker_stats[w].steals));
  }

  // Per-op cost accounting: the graph replay counters accumulate as
  // "hiergat.graph.node.<op>.{replays,ns,est_flops,est_bytes}"; fold
  // them back into per-op rows for the JSON (`seconds` stays 0 when the
  // run never traced — the ns counter only ticks under an active trace).
  {
    struct NodeRow {
      int64_t replays = 0;
      double seconds = 0.0;
      double est_flops = 0.0;
      double est_bytes = 0.0;
    };
    static const char kNodePrefix[] = "hiergat.graph.node.";
    std::map<std::string, NodeRow> rows;
    for (const auto& [name, value] :
         obs::MetricsRegistry::Global().CounterValues(kNodePrefix)) {
      const std::string rest = name.substr(sizeof(kNodePrefix) - 1);
      const size_t dot = rest.rfind('.');
      if (dot == std::string::npos) continue;
      const std::string op = rest.substr(0, dot);
      const std::string field = rest.substr(dot + 1);
      NodeRow& row = rows[op];
      if (field == "replays") {
        row.replays = value;
      } else if (field == "ns") {
        row.seconds = static_cast<double>(value) * 1e-9;
      } else if (field == "est_flops") {
        row.est_flops = static_cast<double>(value);
      } else if (field == "est_bytes") {
        row.est_bytes = static_cast<double>(value);
      }
    }
    for (const auto& [op, row] : rows) {
      result.AddGraphNode(op, row.replays, row.seconds, row.est_flops,
                          row.est_bytes);
    }
  }
  if (!bench::WriteBenchJson(bench::JsonOutPath(argc, argv), result)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hiergat

int main(int argc, char** argv) { return hiergat::main_impl(argc, argv); }
