// Long-lived ER matching server (DESIGN.md §14): loads checkpoints
// into a hot-swappable model registry and serves the framed scoring
// protocol plus the /healthz //readyz //metrics HTTP shim on one port.
//
//   hiergat_serve --port=7071 --model=prod=model.ckpt --threads=4
//
// Models can be named explicitly (--model=name=path, repeatable) or
// discovered from a directory of *.ckpt files (--model_dir=DIR, model
// name = file stem). Clients hot-swap any of them at runtime via the
// reload RPC. SIGTERM/SIGINT triggers a graceful drain: stop
// accepting, answer everything admitted, then flush the trace rings
// (--trace_out) and the flight recorder via obs::DrainAndDump — the
// same dump path a crash would take.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

#include "er/session.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace hiergat {
namespace {

// Self-pipe wakeup: the handler only writes one byte (async-signal
// safe); the main thread blocks in read() and runs the actual drain.
int g_shutdown_pipe[2] = {-1, -1};

void HandleShutdownSignal(int) {
  const char byte = 1;
  (void)!write(g_shutdown_pipe[1], &byte, 1);
}

struct Flags {
  std::string host = "127.0.0.1";
  int port = 7071;
  int threads = 0;  // 0 = hardware concurrency.
  int max_batch_size = 32;
  int max_delay_us = 1000;
  int max_pending_pairs = 8192;
  int max_per_connection = 64;
  bool quantize = false;
  std::vector<std::pair<std::string, std::string>> models;  // name -> path.
  std::string model_dir;
  std::string trace_out;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--model=NAME=CKPT]... [--model_dir=DIR] [options]\n"
      "\n"
      "  --model=NAME=CKPT      publish checkpoint CKPT as model NAME\n"
      "                         (repeatable)\n"
      "  --model_dir=DIR        publish every *.ckpt in DIR (name = stem)\n"
      "  --host=ADDR            bind address         (default 127.0.0.1)\n"
      "  --port=N               TCP port, 0=ephemeral (default 7071)\n"
      "  --threads=N            engine workers/model, 0=auto (default 0)\n"
      "  --max_batch_size=N     pairs per coalesced batch (default 32)\n"
      "  --max_delay_us=N       batch hold time in usec  (default 1000)\n"
      "  --max_pending_pairs=N  admission cap, 0=off     (default 8192)\n"
      "  --max_per_connection=N per-conn in-flight cap   (default 64)\n"
      "  --quantize             serve Q8_0-quantized weights\n"
      "  --trace_out=PATH       write a Chrome trace on shutdown\n");
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len &&
          arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--model")) {
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v || eq[1] == '\0') {
        std::fprintf(stderr, "--model wants NAME=CKPT, got \"%s\"\n", v);
        return false;
      }
      flags->models.emplace_back(std::string(v, eq), std::string(eq + 1));
    } else if (const char* v = value_of("--model_dir")) {
      flags->model_dir = v;
    } else if (const char* v = value_of("--host")) {
      flags->host = v;
    } else if (const char* v = value_of("--port")) {
      flags->port = std::atoi(v);
    } else if (const char* v = value_of("--threads")) {
      flags->threads = std::atoi(v);
    } else if (const char* v = value_of("--max_batch_size")) {
      flags->max_batch_size = std::atoi(v);
    } else if (const char* v = value_of("--max_delay_us")) {
      flags->max_delay_us = std::atoi(v);
    } else if (const char* v = value_of("--max_pending_pairs")) {
      flags->max_pending_pairs = std::atoi(v);
    } else if (const char* v = value_of("--max_per_connection")) {
      flags->max_per_connection = std::atoi(v);
    } else if (const char* v = value_of("--trace_out")) {
      flags->trace_out = v;
    } else if (arg == "--quantize") {
      flags->quantize = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "unknown flag \"%s\"\n", arg.c_str());
      PrintUsage(argv[0]);
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  if (!flags.model_dir.empty()) {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(flags.model_dir, ec)) {
      if (entry.path().extension() == ".ckpt") {
        flags.models.emplace_back(entry.path().stem().string(),
                                  entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "cannot read --model_dir=%s: %s\n",
                   flags.model_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }
  if (flags.models.empty()) {
    std::fprintf(stderr, "no models: pass --model=NAME=CKPT or --model_dir\n");
    PrintUsage(argv[0]);
    return 2;
  }

  serve::ModelRegistry registry;
  for (const auto& [name, path] : flags.models) {
    SessionOptions session_options;
    session_options.checkpoint_path = path;
    session_options.engine.num_threads = flags.threads;
    session_options.quantize_weights = flags.quantize;
    const Status status = registry.LoadModel(name, session_options);
    if (!status.ok()) {
      std::fprintf(stderr, "loading model \"%s\" from %s failed: %s\n",
                   name.c_str(), path.c_str(), status.ToString().c_str());
      return 1;
    }
    std::printf("published model \"%s\" from %s\n", name.c_str(),
                path.c_str());
  }

  serve::ServerOptions server_options;
  server_options.host = flags.host;
  server_options.port = flags.port;
  server_options.batcher.max_batch_size = flags.max_batch_size;
  server_options.batcher.max_delay_us = flags.max_delay_us;
  server_options.admission.max_pending_pairs = flags.max_pending_pairs;
  server_options.admission.max_per_connection = flags.max_per_connection;

  auto server_or = serve::Server::Start(&registry, server_options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<serve::Server> server = std::move(server_or).value();

  if (!flags.trace_out.empty()) {
    obs::SetTraceDrainPath(flags.trace_out);
    obs::TraceRecorder::Global().Start();
  }
  // First Global() touch installs the crash handlers, so a SIGSEGV
  // after this point dumps the flight ring.
  obs::FlightRecorder::Global();

  if (pipe(g_shutdown_pipe) != 0) {
    std::fprintf(stderr, "pipe() failed: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = HandleShutdownSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::printf("serving on %s:%d (batch<=%d, hold<=%dus); SIGTERM drains\n",
              flags.host.c_str(), server->port(), flags.max_batch_size,
              flags.max_delay_us);
  std::fflush(stdout);

  char byte;
  while (read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::printf("shutdown signal received; draining...\n");
  server->Shutdown();
  const serve::Server::Stats stats = server->stats();
  std::printf("served %lld request(s) on %lld connection(s)\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.connections));
  obs::TraceRecorder::Global().Stop();
  obs::DrainAndDump();
  return 0;
}

}  // namespace
}  // namespace hiergat

int main(int argc, char** argv) { return hiergat::Main(argc, argv); }
