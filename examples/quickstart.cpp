// Quickstart: train HierGAT on a small product benchmark and match two
// entities.
//
//   $ ./examples/quickstart
//
// Walks the full public API through the er.h umbrella header: generate
// (or load) a dataset, open an er::Session (model + inference engine +
// compiled scoring graphs behind one options struct), train it,
// batch-score candidates, and evaluate F1.

#include <cstdio>

#include "er/er.h"
#include "obs/metrics.h"

using namespace hiergat;  // Example code; library code never does this.

int main() {
  // 1. Data: a small synthetic product-matching benchmark with a 3:1:1
  //    train/validation/test split. Swap in ReadPairsCsv() to use your
  //    own labeled pairs.
  SyntheticSpec spec;
  spec.name = "quickstart";
  spec.num_pairs = 300;
  spec.num_attributes = 3;  // title / brand / description.
  spec.hardness = 0.5f;
  spec.noise = 0.05f;
  spec.seed = 1;
  const PairDataset data = GeneratePairDataset(spec);
  std::printf("dataset: %d pairs (%d positive), schema of %d attributes\n",
              data.TotalSize(), data.PositiveCount(), data.NumAttributes());

  // 2. Session: pairwise HierGAT with the small MiniLM backbone plus a
  //    4-worker inference engine, in one call. The backbone is
  //    pre-trained on the dataset's unlabeled text, then the whole
  //    stack fine-tunes end-to-end; TrainOptions::seed drives both
  //    stages. Set options.checkpoint_path to resume a saved model
  //    instead of training.
  SessionOptions session_options;
  session_options.matcher = "hiergat";
  session_options.lm_size = LmSize::kSmall;
  session_options.lm_pretrain_steps = 1500;
  session_options.engine.num_threads = 4;
  auto session_or = Session::Open(session_options);
  if (!session_or.ok()) {
    std::fprintf(stderr, "Session::Open failed: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  const std::unique_ptr<Session> session = std::move(session_or).value();

  TrainOptions options;
  options.epochs = 8;
  options.verbose = true;
  if (const Status status = session->Train(data, options); !status.ok()) {
    std::fprintf(stderr, "train failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Evaluate on the held-out test pairs.
  const EvalResult result = session->Evaluate(data.test);
  std::printf("\ntest metrics: %s\n", result.ToString().c_str());

  // 4. Batch-score the test pairs — the production path for blocker
  //    output. The session routes through its engine (work-stealing
  //    pool + summary cache) and the compiled scoring graphs
  //    (DESIGN.md §11); repeated same-shape batches replay planned
  //    arena graphs instead of re-running eager ops.
  const std::vector<float> probabilities = session->Score(data.test);

  const EntityPair& pair = data.test.front();
  std::printf("\nentity A: %s\nentity B: %s\n",
              pair.left.Serialize().c_str(), pair.right.Serialize().c_str());
  std::printf("P(match) = %.3f   (gold label: %d)\n", probabilities.front(),
              pair.label);

  // 5. Observability: every stage above recorded metrics (cache hit
  //    rate, compiled-graph replays, per-worker steals, batch latency,
  //    training telemetry). Export them Prometheus-style; see
  //    DESIGN.md §8.
  std::printf("\n--- metrics (Prometheus exposition) ---\n%s",
              obs::MetricsRegistry::Global().PrometheusText().c_str());
  return 0;
}
