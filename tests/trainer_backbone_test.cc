// Tests for the shared training machinery (snapshot/restore, best-epoch
// selection, options plumbing) and the LM backbone construction.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "er/lm_backbone.h"
#include "er/trainer.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"

namespace hiergat {
namespace {

TEST(SnapshotTest, RoundTripRestoresValues) {
  Rng rng(1);
  Linear layer(3, 2, rng);
  std::vector<Tensor> params = layer.Parameters();
  const auto snapshot = SnapshotParameters(params);
  for (Tensor& p : params) {
    for (float& v : p.data()) v += 1.0f;
  }
  RestoreParameters(snapshot, &params);
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i].data(), snapshot[i]);
  }
}

/// A minimal trainable model: logistic regression over PairFeatures-free
/// toy encoding (bag equality), to exercise the NeuralPairwiseModel loop
/// without transformer cost.
class ToyPairwiseModel : public NeuralPairwiseModel {
 public:
  ToyPairwiseModel() : rng_(3), layer_(2, 2, rng_) {}
  std::string name() const override { return "toy"; }
  void Train(const PairDataset& data, const TrainOptions& options) override {
    NeuralPairwiseModel::Train(data, options);
    trained_ = true;
  }
  bool trained() const { return trained_; }

 protected:
  Tensor ForwardLogits(const EntityPair& pair, bool, Rng&) const override {
    // Features: token overlap of the two sides + bias-ish constant.
    const auto lt = pair.left.AllValueTokens();
    const auto rt = pair.right.AllValueTokens();
    float overlap = 0.0f;
    for (const auto& t : lt) {
      for (const auto& r : rt) {
        if (t == r) {
          overlap += 1.0f;
          break;
        }
      }
    }
    overlap /= static_cast<float>(std::max<size_t>(1, lt.size()));
    Tensor x = Tensor::FromVector({1, 2}, {overlap, 1.0f});
    return layer_.Forward(x);
  }
  std::vector<Tensor> TrainableParameters() const override {
    return layer_.Parameters();
  }

 private:
  Rng rng_;
  Linear layer_;
  bool trained_ = false;
};

PairDataset ToyData() {
  SyntheticSpec spec;
  spec.name = "toy";
  spec.num_pairs = 200;
  spec.hardness = 0.2f;  // Easy: overlap separates well.
  spec.noise = 0.03f;
  spec.seed = 31;
  return GeneratePairDataset(spec);
}

TEST(NeuralTrainerTest, ToyModelLearnsFromOverlapFeature) {
  PairDataset data = ToyData();
  ToyPairwiseModel model;
  TrainOptions options;
  options.epochs = 30;
  options.lr = 0.1f;
  model.Train(data, options);
  EXPECT_TRUE(model.trained());
  EXPECT_GT(model.Evaluate(data.test).f1, 0.6f);
  EXPECT_GT(model.last_train_seconds(), 0.0);
}

TEST(NeuralTrainerTest, ValidationSelectionNeverWorseThanFinalEpoch) {
  PairDataset data = ToyData();
  TrainOptions options;
  options.epochs = 12;
  options.lr = 0.5f;  // Deliberately unstable: late epochs oscillate.
  options.select_best_on_validation = false;
  ToyPairwiseModel last_epoch;
  last_epoch.Train(data, options);
  const float last_f1 = last_epoch.Evaluate(data.valid).f1;

  options.select_best_on_validation = true;
  ToyPairwiseModel best_epoch;
  best_epoch.Train(data, options);
  const float best_f1 = best_epoch.Evaluate(data.valid).f1;
  EXPECT_GE(best_f1 + 1e-5f, last_f1)
      << "best-epoch selection must not underperform the last epoch on "
         "the validation split it selects on";
}

TEST(NeuralTrainerTest, MaxTrainItemsShortensTraining) {
  PairDataset data = ToyData();
  TrainOptions options;
  options.epochs = 5;
  ToyPairwiseModel full;
  full.Train(data, options);
  options.max_train_items = 5;
  ToyPairwiseModel limited;
  limited.Train(data, options);
  EXPECT_LT(limited.last_train_seconds(), full.last_train_seconds());
}

TEST(BackboneTest, VocabularyCoversAllSplits) {
  SyntheticSpec spec;
  spec.name = "vocab";
  spec.num_pairs = 80;
  spec.seed = 17;
  const PairDataset data = GeneratePairDataset(spec);
  const auto vocab = BuildVocabulary({&data.train, &data.valid, &data.test});
  for (const auto* split : {&data.train, &data.valid, &data.test}) {
    for (const EntityPair& pair : *split) {
      for (const Entity* e : {&pair.left, &pair.right}) {
        for (const std::string& token : e->AllValueTokens()) {
          EXPECT_TRUE(vocab->Contains(token)) << token;
        }
      }
    }
  }
}

TEST(BackboneTest, CorpusHasValueSentencesAndSerializations) {
  SyntheticSpec spec;
  spec.name = "corpus";
  spec.num_pairs = 40;
  spec.num_attributes = 3;
  spec.seed = 19;
  const PairDataset data = GeneratePairDataset(spec);
  const auto vocab = BuildVocabulary({&data.train, &data.valid, &data.test});
  const auto corpus = MakeCorpus(data.train, *vocab);
  // Per entity: up to 3 value sentences + 1 whole-entity serialization.
  EXPECT_GT(corpus.size(), data.train.size() * 2);
  EXPECT_LE(corpus.size(), data.train.size() * 2 * 4);
  size_t max_len = 0;
  for (const auto& sentence : corpus) {
    EXPECT_FALSE(sentence.empty());
    max_len = std::max(max_len, sentence.size());
    for (int id : sentence) {
      EXPECT_GE(id, Vocabulary::kNumSpecial) << "no special ids in corpus";
      EXPECT_LT(id, vocab->size());
    }
  }
  EXPECT_LE(max_len, 40u) << "serializations are capped";
}

TEST(BackboneTest, MakeBackbonePretrainsDeterministically) {
  SyntheticSpec spec;
  spec.name = "bk";
  spec.num_pairs = 60;
  spec.seed = 23;
  const PairDataset data = GeneratePairDataset(spec);
  LmBackbone a = MakeBackbone(data, LmSize::kSmall, 50, 7);
  LmBackbone b = MakeBackbone(data, LmSize::kSmall, 50, 7);
  const auto pa = a.lm->Parameters();
  const auto pb = b.lm->Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].data(), pb[i].data());
  }
}

}  // namespace
}  // namespace hiergat
