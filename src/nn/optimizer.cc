#include "nn/optimizer.h"

#include <cmath>

namespace hiergat {

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (Tensor& p : params_) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Tensor& p : params_) {
      for (float& g : p.grad()) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      velocity_[i].assign(params_[i].data().size(), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().empty()) continue;
    if (momentum_ > 0.0f) {
      for (size_t j = 0; j < p.data().size(); ++j) {
        velocity_[i][j] = momentum_ * velocity_[i][j] + p.grad()[j];
        p.data()[j] -= lr_ * velocity_[i][j];
      }
    } else {
      for (size_t j = 0; j < p.data().size(); ++j) {
        p.data()[j] -= lr_ * p.grad()[j];
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].data().size(), 0.0f);
    v_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Adam::SetLrMultipliers(std::vector<float> multipliers) {
  lr_multipliers_ = std::move(multipliers);
}

void Adam::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().empty()) continue;
    const float lr =
        i < lr_multipliers_.size() ? lr_ * lr_multipliers_[i] : lr_;
    for (size_t j = 0; j < p.data().size(); ++j) {
      const float g = p.grad()[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      const float mhat = m_[i][j] / bias1;
      const float vhat = v_[i][j] / bias2;
      p.data()[j] -= lr * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace hiergat
