#!/usr/bin/env python3
"""Renders a top-K hot-node table from a hiergat Chrome trace JSON.

Usage: hg_trace_report.py TRACE.json [--top K] [--trace ID]

TRACE.json is the file written by `--trace_out=PATH` (bench binaries) or
`TraceRecorder::WriteChromeTrace`. Complete events ("ph":"X") are
grouped by span name and ranked by total duration; spans stamped with
cost estimates (graph replay nodes) additionally show FLOPs, bytes
moved, and achieved GFLOP/s. With --trace ID only spans belonging to
that request-scoped trace id are counted. The hiergatTrace footer is
used to flag ring-buffer truncation. Stdlib-only on purpose.
"""

import argparse
import json
import sys


def fmt_count(value):
    """1234567 -> '1.23M' (keeps the table narrow)."""
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f}{suffix}"
    return f"{value:.0f}" if float(value).is_integer() else f"{value:.2f}"


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("trace")
    parser.add_argument("--top", type=int, default=15, metavar="K")
    parser.add_argument(
        "--trace", dest="trace_id", type=int, default=None, metavar="ID",
        help="only count spans with args.trace == ID",
    )
    args = parser.parse_args(argv[1:])

    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {args.trace}: {exc}", file=sys.stderr)
        return 2
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"error: {args.trace}: no traceEvents array", file=sys.stderr)
        return 2

    # name -> [count, total_us, flops, bytes]; ts/dur are microseconds in
    # the Chrome trace format.
    groups = {}
    trace_ids = set()
    considered = 0
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        event_args = event.get("args") or {}
        tid = event_args.get("trace")
        if tid is not None:
            trace_ids.add(tid)
        if args.trace_id is not None and tid != args.trace_id:
            continue
        considered += 1
        row = groups.setdefault(event.get("name", "?"), [0, 0.0, 0, 0])
        row[0] += 1
        row[1] += float(event.get("dur", 0.0))
        row[2] += int(event_args.get("flops", 0))
        row[3] += int(event_args.get("bytes", 0))

    footer = doc.get("hiergatTrace") or {}
    dropped = footer.get("dropped_events", 0)
    scope = (
        f"trace id {args.trace_id}" if args.trace_id is not None else
        f"{len(trace_ids)} request trace id(s)"
    )
    print(
        f"{args.trace}: {considered} spans, {len(groups)} distinct names, "
        f"{scope}"
    )
    if dropped:
        print(
            f"warning: {dropped} events dropped by the trace ring "
            "(oldest-first); totals below undercount early activity"
        )

    ranked = sorted(groups.items(), key=lambda kv: kv[1][1], reverse=True)
    header = (
        f"{'span':<40} {'count':>8} {'total ms':>10} {'avg us':>9} "
        f"{'flops':>9} {'bytes':>9} {'GFLOP/s':>8}"
    )
    print()
    print(header)
    print("-" * len(header))
    for name, (count, total_us, flops, nbytes) in ranked[: args.top]:
        avg_us = total_us / count if count else 0.0
        # Quantized-weight replay nodes (LinearQ8 etc.) are labeled so a
        # mixed f32/q8 trace reads unambiguously; their bytes column
        # already counts Q8_0 wire bytes, not dense f32 bytes.
        label = f"{name} (q8)" if "Q8" in name else name
        left = f"{label:<40} {count:>8} {total_us / 1e3:>10.3f} {avg_us:>9.1f}"
        if flops:
            # A span with cost estimates but zero recorded time (e.g. a
            # ring-truncated or untimed replay) has no meaningful rate:
            # show '-' rather than a bogus 0.00.
            if total_us > 0:
                gflops = flops / (total_us * 1e-6) / 1e9
                rate = f"{gflops:>8.2f}"
            else:
                rate = f"{'-':>8}"
            print(
                f"{left} {fmt_count(flops):>9} {fmt_count(nbytes):>9} "
                f"{rate}"
            )
        else:
            print(f"{left} {'-':>9} {'-':>9} {'-':>8}")
    hidden = len(ranked) - min(len(ranked), args.top)
    if hidden > 0:
        print(f"... {hidden} more span name(s); raise --top to see them")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
