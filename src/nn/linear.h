#ifndef HIERGAT_NN_LINEAR_H_
#define HIERGAT_NN_LINEAR_H_

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"

namespace hiergat {

/// Fully connected layer: y = x W + b for x of shape [n, in_features].
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng, bool use_bias = true);

  /// Applies the affine map to a [n, in_features] input.
  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

  void RegisterParameters(NamedParameters* out) const override {
    (void)out->Add("weight", weight_);
    if (bias_.defined()) (void)out->Add("bias", bias_);
  }

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]; undefined when use_bias is false
};

}  // namespace hiergat

#endif  // HIERGAT_NN_LINEAR_H_
